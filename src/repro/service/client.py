"""Client side of the tuning service: HTTP wrapper and remote driver.

:class:`ServiceClient` is a thin JSON-over-HTTP wrapper (stdlib
``urllib``, no dependencies) around the service endpoints.

:class:`RemoteTuner` is the client-side oracle adapter: it mirrors
:meth:`PPATuner.tune <repro.core.tuner.PPATuner.tune>` but the loop's
brain lives on the server — the client only evaluates what the service
asks for and tells the outcomes back.  The oracle (and the resilience
layer around it) stays fully client-side; trace events the oracle emits
(tool evaluations, retries, breaker transitions) are captured locally
and forwarded with each ``tell`` so the server-side trace is complete.
Because the server session runs the same state machine with the same
seeds, a remote run's Pareto indices are identical to an in-process
``PPATuner.tune`` on the same inputs.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np

from ..core.config import PPATunerConfig
from ..core.result import TuningResult
from ..obs.recorder import TraceRecorder
from ..obs.sinks import MemorySink

__all__ = ["RemoteTuner", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the tuning service.

    Attributes:
        status: HTTP status code.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = int(status)


class ServiceClient:
    """JSON-over-HTTP client for one tuning service.

    Args:
        base_url: Service root, e.g. ``http://127.0.0.1:8763``.
        timeout_s: Per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None else None
        )
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                req, timeout=self.timeout_s
            ) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                message = str(exc)
            raise ServiceError(exc.code, message) from exc

    # ------------------------------------------------------------------
    # endpoints

    def create_session(
        self,
        config: PPATunerConfig | dict,
        X_pool: np.ndarray,
        n_objectives: int,
        session_id: str | None = None,
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
        init_indices: np.ndarray | None = None,
        max_evaluations: int | None = None,
        warm_start: str | None = None,
        trace: bool = False,
    ) -> str:
        """Create a server-side session; returns its id.

        ``warm_start`` (``"random"``/``"copula"``) overrides the
        config's initialization mode — the cold-start path for a new
        session created with source archives but little target data.
        """
        if isinstance(config, PPATunerConfig):
            config = config.to_json()
        payload: dict = {
            "config": config,
            "X_pool": np.asarray(X_pool, dtype=float).tolist(),
            "n_objectives": int(n_objectives),
            "trace": bool(trace),
        }
        if session_id is not None:
            payload["session_id"] = session_id
        if X_source is not None:
            payload["X_source"] = np.asarray(
                X_source, dtype=float
            ).tolist()
        if Y_source is not None:
            payload["Y_source"] = np.asarray(
                Y_source, dtype=float
            ).tolist()
        if sources is not None:
            payload["sources"] = [
                [
                    np.asarray(Xs, dtype=float).tolist(),
                    np.asarray(Ys, dtype=float).tolist(),
                ]
                for Xs, Ys in sources
            ]
        if init_indices is not None:
            payload["init_indices"] = [int(i) for i in init_indices]
        if max_evaluations is not None:
            payload["max_evaluations"] = int(max_evaluations)
        if warm_start is not None:
            payload["warm_start"] = str(warm_start)
        return self._request("POST", "/sessions", payload)["session_id"]

    def ask(self, session_id: str) -> dict:
        """Advance the session; returns pending indices and status."""
        return self._request("POST", f"/sessions/{session_id}/ask")

    def tell(
        self,
        session_id: str,
        index: int,
        values: np.ndarray | None = None,
        failure: dict | None = None,
        n_evaluations: int | None = None,
        events: list[dict] | None = None,
    ) -> dict:
        """Report one evaluation outcome (or failure) to the session."""
        payload: dict = {"index": int(index)}
        if values is not None:
            payload["values"] = [
                float(v) for v in np.asarray(values, dtype=float).ravel()
            ]
        if failure is not None:
            payload["failure"] = failure
        if n_evaluations is not None:
            payload["n_evaluations"] = int(n_evaluations)
        if events:
            payload["events"] = events
        return self._request(
            "POST", f"/sessions/{session_id}/tell", payload
        )

    def tell_batch(self, session_id: str, tells: list[dict]) -> dict:
        """Report a whole batch of outcomes in one request.

        Args:
            session_id: Target session.
            tells: Entries with the same keys :meth:`tell` takes
                (``index`` plus ``values``/``failure`` and optional
                ``n_evaluations``/``events``); any order within the
                pending batch is accepted.
        """
        return self._request(
            "POST", f"/sessions/{session_id}/tell_batch",
            {"tells": tells},
        )

    def pool(self, session_id: str, start: int = 0) -> dict:
        """Fetch candidate-pool rows from index ``start`` on.

        Used after an ask reply whose ``n_pool`` exceeds the locally
        known pool size — refinement grew the server-side pool.
        """
        return self._request(
            "GET", f"/sessions/{session_id}/pool?from={int(start)}"
        )

    def stop(self, session_id: str, reason: str = "stopped") -> dict:
        """Force a session to wrap up through golden verification."""
        return self._request(
            "POST", f"/sessions/{session_id}/stop", {"reason": reason}
        )

    def status(self, session_id: str) -> dict:
        """One session's progress digest."""
        return self._request("GET", f"/sessions/{session_id}")

    def sessions(self) -> list[dict]:
        """Status digests of every hosted session."""
        return self._request("GET", "/sessions")["sessions"]

    def result(self, session_id: str) -> TuningResult:
        """A finished session's result (409 -> ServiceError until done)."""
        return TuningResult.from_json(
            self._request("GET", f"/sessions/{session_id}/result")
        )

    def delete(self, session_id: str) -> None:
        """Drop a session with its snapshot and trace."""
        self._request("DELETE", f"/sessions/{session_id}")


class RemoteTuner:
    """Drive a remote tuning session with a local oracle.

    Example:
        >>> client = ServiceClient(svc.url)            # doctest: +SKIP
        >>> tuner = RemoteTuner(client, cfg)           # doctest: +SKIP
        >>> result = tuner.tune(X_pool, oracle)        # doctest: +SKIP

    Args:
        client: The service connection.
        config: Loop hyperparameters, serialized to the server.
        max_evaluations: Optional per-session loop budget enforced
            server-side.
        trace: Record a server-side JSONL trace of the session.
        forward_events: Capture the local oracle's trace events and
            forward them with each ``tell`` (keeps the server trace
            complete).  Disabled automatically when the oracle carries
            its own recorder.
    """

    #: :class:`~repro.core.Tuner` protocol name (it drives the same
    #: algorithm as the in-process PPATuner, remotely).
    name = "PPATuner"

    def __init__(
        self,
        client: ServiceClient,
        config: PPATunerConfig | None = None,
        max_evaluations: int | None = None,
        trace: bool = False,
        forward_events: bool = True,
    ) -> None:
        self.client = client
        self.config = config or PPATunerConfig()
        self.max_evaluations = max_evaluations
        self.trace = trace
        self.forward_events = forward_events
        self.session_id: str | None = None

    def tune(
        self,
        X_pool: np.ndarray,
        oracle,
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        init_indices: np.ndarray | None = None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> TuningResult:
        """Run one remote session to completion (same surface as
        :meth:`PPATuner.tune`)."""
        from ..reliability.errors import (
            CircuitOpenError,
            PermanentEvaluationError,
        )
        from ..reliability.resilient import ResilientOracle

        cfg = self.config
        X_pool = np.atleast_2d(np.asarray(X_pool, dtype=float))
        if len(X_pool) != oracle.n_candidates:
            raise ValueError("pool and oracle size mismatch")

        # Capture the oracle's event stream locally so it can be
        # forwarded; adopt only when the oracle has no recorder.
        capture: MemorySink | None = None
        adopted = (
            self.forward_events
            and hasattr(oracle, "recorder")
            and not getattr(oracle, "recorder")
        )
        original_recorder = getattr(oracle, "recorder", None)
        capture_recorder = None
        if adopted:
            capture = MemorySink()
            capture_recorder = TraceRecorder(sinks=[capture])
            oracle.recorder = capture_recorder

        policy = cfg.fault_policy
        if policy is not None and not isinstance(
            oracle, ResilientOracle
        ):
            oracle = ResilientOracle(
                oracle, policy=policy, seed=cfg.seed,
                recorder=capture_recorder,
            )

        def drain() -> list[dict]:
            if capture is None:
                return []
            events = [ev.to_json() for ev in capture._events]
            capture._events.clear()
            return events

        try:
            sid = self.client.create_session(
                cfg, X_pool, oracle.n_objectives,
                X_source=X_source, Y_source=Y_source, sources=sources,
                init_indices=init_indices,
                max_evaluations=self.max_evaluations, trace=self.trace,
            )
            self.session_id = sid
            while True:
                reply = self.client.ask(sid)
                pending = reply["pending"]
                if not pending:
                    break
                n_pool = int(reply.get("n_pool", oracle.n_candidates))
                if n_pool > oracle.n_candidates:
                    # Server-side refinement grew the pool; pull the new
                    # rows and teach the local oracle about them.
                    extend = getattr(oracle, "extend", None)
                    if extend is None:
                        raise RuntimeError(
                            f"{type(oracle).__name__} cannot evaluate "
                            "refined candidates; use an extendable "
                            "oracle or pool_refine_every=0"
                        )
                    rows = self.client.pool(
                        sid, start=oracle.n_candidates
                    )["X_pool"]
                    extend(np.asarray(rows, dtype=float))
                if len(pending) > 1 and cfg.q > 1:
                    if self._tell_pending_batch(sid, oracle, pending, drain):
                        continue
                for idx in pending:
                    idx = int(idx)
                    try:
                        value = np.asarray(
                            oracle.evaluate(idx), dtype=float
                        ).ravel()
                    except PermanentEvaluationError as exc:
                        if (
                            policy is None
                            or policy.on_permanent_failure == "raise"
                        ):
                            raise
                        self.client.tell(
                            sid, idx,
                            failure={
                                "error": type(exc).__name__,
                                "attempts": exc.attempts,
                                "circuit_open": isinstance(
                                    exc, CircuitOpenError
                                ),
                            },
                            n_evaluations=oracle.n_evaluations,
                            events=drain(),
                        )
                        continue
                    self.client.tell(
                        sid, idx, values=value,
                        n_evaluations=oracle.n_evaluations,
                        events=drain(),
                    )
            return self.client.result(sid)
        finally:
            self._cleanup(oracle, adopted, original_recorder)

    def _tell_pending_batch(
        self, sid: str, oracle, pending: list[int], drain
    ) -> bool:
        """Evaluate a pending batch concurrently and tell it in one shot.

        Returns False when the oracle's batch path errors — the caller
        then falls back to the serial per-point loop, whose retry and
        failure-reporting semantics are unchanged.
        """
        idx = [int(i) for i in pending]
        try:
            rows = np.atleast_2d(np.asarray(
                oracle.evaluate_batch(idx), dtype=float
            ))
        except Exception:
            return False
        if rows.shape[0] != len(idx):
            return False
        n_eval = oracle.n_evaluations
        events = drain()
        tells = []
        for k, (i, row) in enumerate(zip(idx, rows)):
            entry: dict = {
                "index": i,
                "values": [float(v) for v in row.ravel()],
                "n_evaluations": int(n_eval),
            }
            if k == 0 and events:
                entry["events"] = events
            tells.append(entry)
        self.client.tell_batch(sid, tells)
        return True

    def _cleanup(self, oracle, adopted, original_recorder) -> None:
        from ..reliability.resilient import ResilientOracle

        if adopted:
            # Restore the caller's exact attribute value (which may
            # be None or another falsy sentinel).
            oracle_attr = (
                oracle.inner
                if isinstance(oracle, ResilientOracle) else oracle
            )
            oracle_attr.recorder = original_recorder
