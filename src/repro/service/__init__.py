"""Multi-session tuning service: ask/tell over HTTP with snapshots.

The service inverts deployment the same way
:class:`~repro.core.session.TuningSession` inverts the loop: the tool
(oracle) runs wherever the licenses are, the tuning brain runs behind
``repro serve``, and every state change is atomically snapshotted so a
killed server resumes each session bit-identically.

- :class:`SessionStore` — crash-safe snapshot persistence.
- :class:`TuningService` — session manager (create/ask/tell/result).
- :class:`TuningServiceHTTP` / :func:`serve` — stdlib HTTP binding.
- :class:`ServiceClient` — JSON-over-HTTP wrapper.
- :class:`RemoteTuner` — drive a remote session with a local oracle,
  mirroring :meth:`PPATuner.tune`.
"""

from .client import RemoteTuner, ServiceClient, ServiceError
from .server import TuningService, TuningServiceHTTP, serve
from .store import SessionStore

__all__ = [
    "RemoteTuner",
    "ServiceClient",
    "ServiceError",
    "SessionStore",
    "TuningService",
    "TuningServiceHTTP",
    "serve",
]
