"""Joint Gaussian copula fit and conditioning.

The model is deliberately small: per-column
:class:`~repro.copula.transform.EmpiricalMarginal` transforms plus one
latent correlation matrix.  Everything downstream — objective
prediction, "good-region" scoring, warm-start seeding — is Gaussian
conditioning in the latent space followed by the inverse marginal map.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

from .transform import EmpiricalMarginal

#: Shrinkage toward the identity applied to the latent correlation.
#: Keeps the matrix positive definite when columns are few-sample or
#: nearly collinear (the few-shot regime this model exists for).
_SHRINKAGE = 0.02


class GaussianCopula:
    """Gaussian copula over the columns of one data matrix.

    Fit on ``(n, k)`` records — conventionally the horizontal stack of
    parameters and objectives — then condition any column subset on any
    other.  Degenerate (constant) columns get zero latent correlation
    and unit variance, so they never poison the conditioning.
    """

    def __init__(self) -> None:
        self.marginals_: list[EmpiricalMarginal] = []
        self.corr_: np.ndarray | None = None

    @property
    def k(self) -> int:
        """Fitted column count."""
        return len(self.marginals_)

    def fit(self, D: np.ndarray) -> "GaussianCopula":
        """Fit marginals and the latent correlation on ``(n, k)`` data."""
        D = np.atleast_2d(np.asarray(D, dtype=float))
        n, k = D.shape
        if n < 3:
            raise ValueError("copula fit needs at least 3 records")
        self.marginals_ = [
            EmpiricalMarginal().fit(D[:, j]) for j in range(k)
        ]
        Z = np.column_stack([
            m.normal_scores(D[:, j]) for j, m in enumerate(self.marginals_)
        ])
        std = Z.std(axis=0)
        live = std > 1e-12
        Zs = (Z - Z.mean(axis=0)) / np.where(live, std, 1.0)
        C = (Zs.T @ Zs) / n
        C[~live, :] = 0.0
        C[:, ~live] = 0.0
        np.fill_diagonal(C, 1.0)
        self.corr_ = (1.0 - _SHRINKAGE) * C + _SHRINKAGE * np.eye(k)
        return self

    def normal_scores(self, V: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Latent coordinates of raw values for the given columns."""
        V = np.atleast_2d(np.asarray(V, dtype=float))
        cols = np.asarray(cols, dtype=int)
        return np.column_stack([
            self.marginals_[j].normal_scores(V[:, i])
            for i, j in enumerate(cols)
        ])

    def conditional(
        self, given_cols: np.ndarray, Z_given: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Latent Gaussian of the remaining columns given latent values.

        Args:
            given_cols: Column indices being conditioned on.
            Z_given: ``(n, len(given_cols))`` latent values (rows are
                independent conditioning points).

        Returns:
            ``(rest_cols, mean, cov)`` — the free column indices (in
            ascending order), the ``(n, len(rest))`` conditional means,
            and the shared ``(len(rest), len(rest))`` conditional
            covariance.
        """
        if self.corr_ is None:
            raise RuntimeError("copula is not fitted")
        given = np.asarray(given_cols, dtype=int)
        rest = np.setdiff1d(np.arange(self.k), given)
        S = self.corr_
        S_gg = S[np.ix_(given, given)]
        S_rg = S[np.ix_(rest, given)]
        # Gain W = S_rg S_gg^{-1}; S_gg is PD by shrinkage.
        W = np.linalg.solve(S_gg, S_rg.T).T
        Z_given = np.atleast_2d(np.asarray(Z_given, dtype=float))
        mean = Z_given @ W.T
        cov = S[np.ix_(rest, rest)] - W @ S_rg.T
        return rest, mean, cov

    def predict(
        self,
        X: np.ndarray,
        x_cols: np.ndarray,
        y_cols: np.ndarray,
    ) -> np.ndarray:
        """Conditional-median prediction of ``y_cols`` given raw
        ``x_cols`` values.

        The latent conditional mean is the conditional median, and
        medians survive the monotone inverse-marginal map — so this is
        the median prediction in raw units, robust to however skewed
        the QoR marginals are.
        """
        x_cols = np.asarray(x_cols, dtype=int)
        y_cols = np.asarray(y_cols, dtype=int)
        Zx = self.normal_scores(X, x_cols)
        rest, mean, _ = self.conditional(x_cols, Zx)
        out = np.empty_like(mean)
        for i, j in enumerate(y_cols):
            pos = int(np.searchsorted(rest, j))
            out[:, i] = self.marginals_[j].from_normal(mean[:, pos])
        return out

    def good_region_scores(
        self,
        X: np.ndarray,
        x_cols: np.ndarray,
        y_cols: np.ndarray,
        top_quantile: float = 0.25,
        quantiles: np.ndarray | None = None,
    ) -> np.ndarray:
        """Log-density of each row's parameters under the latent
        conditional "parameters given top-quantile objectives".

        Conditioning every objective column at the ``top_quantile``
        normal score (objectives are minimized, so low quantiles are
        good) yields a Gaussian over the parameter latents; candidates
        are scored by their log-density under it.  Higher is better.
        ``quantiles`` overrides the shared scalar with one quantile per
        objective — an ε-constraint-style anchor (one objective pushed
        low, the rest at their medians) that lets callers sweep the
        trade-off front instead of always aiming at its knee.
        """
        x_cols = np.asarray(x_cols, dtype=int)
        y_cols = np.asarray(y_cols, dtype=int)
        if quantiles is None:
            quantiles = np.full(len(y_cols), float(top_quantile))
        quantiles = np.asarray(quantiles, dtype=float)
        if quantiles.shape != (len(y_cols),):
            raise ValueError("quantiles must give one value per objective")
        if not np.all((quantiles > 0.0) & (quantiles < 1.0)):
            raise ValueError("top_quantile must be in (0, 1)")
        z_star = ndtri(quantiles)[None, :]
        rest, mean, cov = self.conditional(y_cols, z_star)
        keep = np.searchsorted(rest, x_cols)
        mu = mean[0, keep]
        cov = cov[np.ix_(keep, keep)]
        Zx = self.normal_scores(X, x_cols)
        return _gaussian_log_density(Zx, mu, cov)


def _gaussian_log_density(
    Z: np.ndarray, mu: np.ndarray, cov: np.ndarray
) -> np.ndarray:
    """Rowwise multivariate-normal log-density (jitter-stabilized)."""
    d = len(mu)
    jitter = 0.0
    for _ in range(6):
        try:
            L = np.linalg.cholesky(cov + jitter * np.eye(d))
            break
        except np.linalg.LinAlgError:
            jitter = max(2.0 * jitter, 1e-10)
    else:  # pragma: no cover - shrinkage keeps cov PD in practice
        raise np.linalg.LinAlgError("conditional covariance not PD")
    diff = np.atleast_2d(Z) - mu
    sol = np.linalg.solve(L, diff.T)
    maha = np.sum(sol**2, axis=0)
    log_det = 2.0 * np.sum(np.log(np.diag(L)))
    return -0.5 * (maha + log_det + d * np.log(2.0 * np.pi))
