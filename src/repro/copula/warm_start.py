"""Copula-ranked seed selection (PPATuner's ``warm_start="copula"``).

Replaces the random ``init_fraction`` draw: fit a Gaussian copula on
the source records, predict every pool candidate's objectives through
the latent conditional median, and pick seeds by cycling a
deterministic sweep of scalarization weight anchors over the
rank-normalized predictions — one-hot extremes, the uniform blend, and
their midpoints — so the initial design spans the *predicted trade-off
front* rather than clustering at its knee.  Every step is deterministic
given the derived seed — exact-tie ranks break by a permutation drawn
from the supplied :class:`~numpy.random.SeedSequence`, never from the
session's main generator, so the random-init path stays bit-identical
and memoized/replayed runs are unaffected.
"""

from __future__ import annotations

import numpy as np

from .model import GaussianCopula

#: Spawn-key tag for the warm-start stream (see ``derive_rng``'s
#: convention in :mod:`repro.runner.spec`).
WARM_START_KEY = 0xC09A


def _weight_anchors(m: int) -> np.ndarray:
    """Deterministic scalarization weights sweeping the ``m``-objective
    trade-off: each one-hot extreme, the uniform blend, and the
    midpoints between them (``2m + 1`` anchors, rows sum to one)."""
    eye = np.eye(m)
    uniform = np.full((1, m), 1.0 / m)
    mids = 0.5 * (eye + uniform)
    return np.vstack([eye, uniform, mids]) if m > 1 else uniform


def copula_seed_indices(
    X_pool: np.ndarray,
    sources: list[tuple[np.ndarray, np.ndarray]],
    n_init: int,
    seed: int | np.random.SeedSequence,
) -> np.ndarray | None:
    """Pick ``n_init`` pool rows the source copula rates as promising.

    Args:
        X_pool: ``(n, d)`` raw target candidate features.
        sources: ``(X_k, Y_k)`` historical archives (stacked for the
            fit).
        n_init: Seeds to select.
        seed: Base seed or pre-spawned sequence; only consumed to break
            exact prediction-rank ties deterministically.

    Returns:
        ``(n_init,)`` unique pool indices, or ``None`` when the sources
        cannot support a copula fit (the caller falls back to the
        random draw).
    """
    X_pool = np.atleast_2d(np.asarray(X_pool, dtype=float))
    if not sources:
        return None
    Xs = np.vstack([np.atleast_2d(np.asarray(X, float)) for X, _ in sources])
    Ys = np.vstack([np.atleast_2d(np.asarray(Y, float)) for _, Y in sources])
    n, d = X_pool.shape
    if len(Xs) < 3 or Xs.shape[1] != d or n_init > n:
        return None

    cop = GaussianCopula().fit(np.hstack([Xs, Ys]))
    m = Ys.shape[1]
    pred = cop.predict(X_pool, np.arange(d), np.arange(d, d + m))
    # Rank-normalize each predicted objective to [0, 1]: the weight
    # anchors then trade off positions along the predicted front.
    ranks = np.argsort(np.argsort(pred, axis=0), axis=0) / max(n - 1, 1)
    anchors = _weight_anchors(m)
    scores = anchors @ ranks.T  # (a, n), lower is better

    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed, spawn_key=(WARM_START_KEY,))
    rng = np.random.default_rng(seed)
    tie_break = rng.permutation(n)
    # Ties in one anchor's weighted rank sum break first by the overall
    # score total (prefer the candidate every anchor likes), then by
    # the seed-derived permutation.
    total = scores.sum(axis=0)
    orders = [
        np.lexsort((tie_break, total, scores[a]))
        for a in range(len(anchors))
    ]

    # Round-robin over the anchors: each contributes its best
    # not-yet-chosen candidate in turn until the design is full.
    chosen: list[int] = []
    taken = np.zeros(n, dtype=bool)
    cursors = [0] * len(anchors)
    while len(chosen) < n_init:
        a = len(chosen) % len(anchors)
        c = cursors[a]
        while taken[orders[a][c]]:
            c += 1
        cursors[a] = c + 1
        pick = int(orders[a][c])
        taken[pick] = True
        chosen.append(pick)
    return np.asarray(chosen, dtype=int)


def copula_warm_start_indices(
    X_pool: np.ndarray,
    sources: list[tuple[np.ndarray, np.ndarray]],
    n_init: int,
    seed: int,
) -> np.ndarray | None:
    """Blended initial design for the GP-based tuner: half
    copula-anchored seeds, half a seed-derived uniform fill.

    A purely front-concentrated design starves the transfer GPs of
    global coverage — calibration then over-prunes and the run plateaus
    above the random arm's front.  Blending keeps the copula's few-shot
    head start on the front while the uniform half preserves the
    surrogate's view of the rest of the space.  The fill is drawn from
    its own spawn-keyed stream, so (like the anchored half) it never
    touches the session's main generator.

    Returns ``None`` when the sources cannot support a copula fit.
    """
    k = max(1, (n_init + 1) // 2)
    anchored = copula_seed_indices(X_pool, sources, min(k, n_init), seed)
    if anchored is None:
        return None
    if n_init <= len(anchored):
        return anchored[:n_init]
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(WARM_START_KEY, 1))
    )
    rest = np.setdiff1d(np.arange(len(X_pool)), anchored)
    fill = rng.choice(rest, size=n_init - len(anchored), replace=False)
    return np.concatenate([anchored, fill])
