"""Gaussian-copula transfer learning over (parameters, objectives).

The copula family ("Transfer-Learning-Based Autotuning Using Gaussian
Copula"; "A Copula approach for hyperparameter transfer learning")
decouples *what is good* from *how it is scaled*: each column of the
source records is rank-transformed through its empirical marginal into
normal scores, a joint Gaussian is fitted in that latent space, and
Gaussian conditioning answers "which parameters co-occur with
top-quantile QoR".  Because only ranks matter, the fit needs no
objective normalization, tolerates heavy-tailed QoR metrics, and is
usable from a handful of source records — the few-shot cold-start
regime where a GP transfer fit is still starved.

Two consumers live on top of this package:

- :class:`~repro.baselines.CopulaTransferTuner` — a standalone
  few-shot baseline behind the unified tuner interface;
- the ``warm_start="copula"`` option of
  :class:`~repro.core.PPATunerConfig`, which replaces the random
  ``init_fraction`` draw with :func:`copula_warm_start_indices` —
  copula-anchored seeds blended with a uniform fill so the transfer
  GPs keep global coverage.
"""

from .model import GaussianCopula
from .transform import EmpiricalMarginal
from .warm_start import copula_seed_indices, copula_warm_start_indices

__all__ = [
    "EmpiricalMarginal",
    "GaussianCopula",
    "copula_seed_indices",
    "copula_warm_start_indices",
]
