"""Empirical rank/quantile marginals (the copula's univariate layer).

A Gaussian copula separates the joint dependence structure from the
per-column scales.  This module owns the per-column half: a fitted
:class:`EmpiricalMarginal` maps raw values to Weibull plotting-position
quantiles ``u = r / (n + 1)`` (never exactly 0 or 1, so the probit stays
finite) and back, interpolating linearly between the observed order
statistics.  Both directions are monotone and exact at the sample
points, which gives the round-trip property the tests pin down:
``quantile(cdf(x)) == x`` for every fitted value and
``cdf(quantile(u)) == u`` for every u inside the fitted grid.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr, ndtri


class EmpiricalMarginal:
    """Piecewise-linear empirical CDF / quantile pair for one column.

    Ties collapse to a single knot at their average plotting position,
    so the knot sequence is strictly increasing in both coordinates and
    the two interpolants are exact inverses on the fitted range.
    Values outside the observed range clamp to the extreme quantiles
    (the copula has no evidence beyond its sample).
    """

    __slots__ = ("values_", "grid_")

    def fit(self, x: np.ndarray) -> "EmpiricalMarginal":
        """Fit on a 1-D sample (at least two values)."""
        x = np.asarray(x, dtype=float).ravel()
        if len(x) < 2:
            raise ValueError("marginal needs at least 2 values")
        if not np.all(np.isfinite(x)):
            raise ValueError("marginal values must be finite")
        order = np.sort(x)
        n = len(order)
        positions = np.arange(1, n + 1) / (n + 1)
        values, start = np.unique(order, return_index=True)
        # Average plotting position of each tie group: group j spans
        # [start[j], start[j+1]) in the sorted sample.
        stop = np.append(start[1:], n)
        csum = np.concatenate([[0.0], np.cumsum(positions)])
        grid = (csum[stop] - csum[start]) / (stop - start)
        self.values_ = values
        self.grid_ = grid
        return self

    @property
    def degenerate(self) -> bool:
        """True when every fitted value was identical."""
        return len(self.values_) == 1

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Map raw values to quantiles in (0, 1)."""
        x = np.asarray(x, dtype=float)
        if self.degenerate:
            return np.full(x.shape, 0.5)
        return np.interp(x, self.values_, self.grid_)

    def quantile(self, u: np.ndarray) -> np.ndarray:
        """Map quantiles back to raw values (clamped to the sample)."""
        u = np.asarray(u, dtype=float)
        if self.degenerate:
            return np.full(u.shape, self.values_[0])
        return np.interp(u, self.grid_, self.values_)

    def normal_scores(self, x: np.ndarray) -> np.ndarray:
        """Latent coordinates: the probit of the empirical quantiles."""
        return ndtri(self.cdf(x))

    def from_normal(self, z: np.ndarray) -> np.ndarray:
        """Raw values for latent coordinates (inverse of
        :meth:`normal_scores` up to range clamping)."""
        return self.quantile(ndtr(np.asarray(z, dtype=float)))
