"""Selection rule (paper Eq. (13)) and its batched q-point extension.

The next configuration sent to the PD tool is the live (undecided or
predicted-Pareto), not-yet-evaluated candidate whose uncertainty region has
the longest diameter — sampling where a single tool run shrinks belief the
most.  Batch mode takes the top-k diameters (the paper's parallel-license
trials).

:func:`select_batch` generalizes the rule to q *diverse* picks per
synchronous round: after each greedy max-diameter pick the chosen
rectangle is hallucinated ("fantasy") collapsed to its posterior mean —
the centre of ``mu ± sqrt(tau) sigma`` is exactly ``mu`` — and the
remaining candidates' scores are damped by a pairwise distance penalty
against the already-chosen batch, so one batch spreads across the live
front instead of re-sampling the same region q times.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs.events import BatchSelected, SelectionMade
from .uncertainty import UncertaintyRegions


def select_next(
    regions: UncertaintyRegions,
    eligible: np.ndarray,
    batch_size: int = 1,
    recorder=None,
    iteration: int = 0,
) -> np.ndarray:
    """Pick the next configurations to evaluate.

    Args:
        regions: Current uncertainty boxes.
        eligible: Mask of candidates that may be selected (live and
            unsampled).
        batch_size: How many to select.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`
            fed one ``SelectionMade`` per call (with the chosen
            candidates' rectangle diameters).
        iteration: Loop iteration tag for the emitted event.

    Returns:
        Up to ``batch_size`` candidate indices, longest diameter first
        (empty if nothing is eligible).
    """
    eligible = np.asarray(eligible, dtype=bool)
    ids = np.nonzero(eligible)[0]
    if len(ids) == 0 or batch_size < 1:
        chosen = np.empty(0, dtype=int)
    else:
        diam = regions.diameters()[ids]
        # Unbounded (never-predicted) regions have infinite diameter and
        # are naturally prioritized.
        order = np.argsort(-diam, kind="stable")
        chosen = ids[order[:batch_size]]
    if recorder:
        all_diam = regions.diameters()
        recorder.emit(SelectionMade(
            iteration=iteration,
            selected=[int(i) for i in chosen],
            diameters=[float(all_diam[int(i)]) for i in chosen],
        ))
    return chosen


def select_batch(
    regions: UncertaintyRegions,
    eligible: np.ndarray,
    q: int,
    recorder=None,
    iteration: int = 0,
    penalty: float = 1.0,
) -> np.ndarray:
    """Greedy q-point selection with fantasy collapse (batched Eq. (13)).

    The first pick is the plain Eq. (13) argmax — identical to
    :func:`select_next` with ``batch_size=1``.  Each chosen rectangle is
    then collapsed (on a scratch copy — the caller's regions are never
    mutated) to its midpoint, the GP posterior mean, and every remaining
    candidate's diameter is multiplied by ``1 - exp(-d / (penalty *
    scale))`` per already-chosen batch member, where ``d`` is the
    QoR-space distance between rectangle centres and ``scale`` is the
    chosen member's pre-collapse diameter.  A candidate sitting on top
    of a pending pick scores ~0; a candidate one diameter away is barely
    penalized.  Unbounded (never-predicted) rectangles have no finite
    centre, take no penalty, and keep their infinite score — they are
    prioritized exactly as in the serial rule.

    Emits one aggregate :class:`SelectionMade` (same shape a serial
    top-q pick would produce, so serial trace consumers keep working)
    plus one :class:`BatchSelected` carrying the greedy order and the
    penalized scores.

    Args:
        regions: Current uncertainty boxes (read-only here).
        eligible: Mask of candidates that may be selected.
        q: Batch size (picks per synchronous round).
        recorder: Optional trace recorder.
        iteration: Loop iteration tag for emitted events.
        penalty: Diversity-penalty length scale multiplier
            (``PPATunerConfig.q_penalty``).

    Returns:
        Up to ``q`` candidate indices in greedy pick order (empty if
        nothing is eligible).
    """
    eligible = np.asarray(eligible, dtype=bool)
    ids = np.nonzero(eligible)[0]
    if len(ids) == 0 or q < 1:
        chosen = np.empty(0, dtype=int)
        scores_out: list[float] = []
    else:
        lo = regions.lo[ids]
        hi = regions.hi[ids]
        true_diam = regions.diameters()[ids]
        with np.errstate(invalid="ignore"):
            # -inf + inf = nan for unbounded rectangles; they are
            # filtered by finite_center and never take a penalty.
            centers = 0.5 * (lo + hi)
        finite_center = np.all(np.isfinite(centers), axis=1)
        score = true_diam.astype(float).copy()
        alive = np.ones(len(ids), dtype=bool)
        picks: list[int] = []
        scores_out = []
        tiny = 1e-12
        for _ in range(min(q, len(ids))):
            masked = np.where(alive, score, -np.inf)
            # Stable argmax: ties break toward the lowest pool index,
            # matching select_next's stable argsort.
            best = int(np.argmax(masked))
            if not np.isfinite(masked[best]) and masked[best] < 0:
                break  # every remaining score is -inf (nothing alive)
            picks.append(best)
            scores_out.append(float(masked[best]))
            alive[best] = False
            if not alive.any():
                break
            # Fantasy collapse: the pick's rectangle shrinks to its
            # centre; neighbours of the (hallucinated) observation are
            # damped so the batch spreads out.
            if finite_center[best]:
                scale = true_diam[best]
                if not np.isfinite(scale) or scale <= 0.0:
                    scale = tiny
                others = alive & finite_center
                if others.any():
                    dist = np.linalg.norm(
                        centers[others] - centers[best], axis=1
                    )
                    factor = -np.expm1(-dist / (penalty * scale))
                    score[others] = score[others] * factor
        chosen = ids[np.asarray(picks, dtype=int)]
    if recorder:
        all_diam = regions.diameters()
        recorder.emit(SelectionMade(
            iteration=iteration,
            selected=[int(i) for i in chosen],
            diameters=[float(all_diam[int(i)]) for i in chosen],
        ))
        recorder.emit(BatchSelected(
            iteration=iteration,
            selected=[int(i) for i in chosen],
            diameters=[float(all_diam[int(i)]) for i in chosen],
            scores=scores_out,
        ))
    return chosen


def select_with_fallback(
    regions: UncertaintyRegions,
    eligible: np.ndarray,
    batch_size: int,
    try_evaluate: Callable[[int], bool],
    recorder=None,
    iteration: int = 0,
    quarantined: np.ndarray | None = None,
) -> tuple[list[int], list[int]]:
    """Eq. (13) selection with fallback past failed evaluations.

    Selects by maximum diameter and evaluates immediately; when the
    chosen candidate fails permanently (``try_evaluate`` returns
    ``False``), it has been marked ineligible by the caller and the rule
    falls through to the next-largest-diameter live candidate, until the
    batch is filled or the eligible pool is exhausted.  On the no-fault
    path exactly one ``SelectionMade`` is emitted per call — the event
    stream is byte-identical to plain :func:`select_next`.

    Args:
        regions: Current uncertainty boxes.
        eligible: Mask of selectable candidates; entries are cleared
            in place as candidates are consumed (evaluated or failed).
        batch_size: Target number of successful evaluations.
        try_evaluate: ``(index) -> bool`` — evaluates and records the
            candidate, returning False on permanent failure (after
            quarantining/unmarking it as the policy dictates).
        recorder: Optional trace recorder (passed to
            :func:`select_next`).
        iteration: Loop iteration tag for emitted events.
        quarantined: Optional mask of permanently failed candidates.
            Consulted before every pick — a point quarantined mid-batch
            (e.g. by a concurrent tell of the same session) is cleared
            from ``eligible`` in place and can never be re-proposed,
            even if the caller's mask went stale between rounds.

    Returns:
        ``(evaluated, failed)`` candidate index lists, in evaluation
        order.
    """
    evaluated: list[int] = []
    failed: list[int] = []
    while len(evaluated) < batch_size:
        if quarantined is not None:
            np.logical_and(
                eligible, ~np.asarray(quarantined, dtype=bool),
                out=eligible,
            )
        want = batch_size - len(evaluated)
        chosen = select_next(
            regions, eligible, want, recorder=recorder,
            iteration=iteration,
        )
        if len(chosen) == 0:
            break
        for idx in chosen:
            idx = int(idx)
            eligible[idx] = False
            if try_evaluate(idx):
                evaluated.append(idx)
            else:
                failed.append(idx)
        if len(chosen) < want:
            break
    return evaluated, failed
