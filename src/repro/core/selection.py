"""Selection rule (paper Eq. (13)).

The next configuration sent to the PD tool is the live (undecided or
predicted-Pareto), not-yet-evaluated candidate whose uncertainty region has
the longest diameter — sampling where a single tool run shrinks belief the
most.  Batch mode takes the top-k diameters (the paper's parallel-license
trials).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs.events import SelectionMade
from .uncertainty import UncertaintyRegions


def select_next(
    regions: UncertaintyRegions,
    eligible: np.ndarray,
    batch_size: int = 1,
    recorder=None,
    iteration: int = 0,
) -> np.ndarray:
    """Pick the next configurations to evaluate.

    Args:
        regions: Current uncertainty boxes.
        eligible: Mask of candidates that may be selected (live and
            unsampled).
        batch_size: How many to select.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`
            fed one ``SelectionMade`` per call (with the chosen
            candidates' rectangle diameters).
        iteration: Loop iteration tag for the emitted event.

    Returns:
        Up to ``batch_size`` candidate indices, longest diameter first
        (empty if nothing is eligible).
    """
    eligible = np.asarray(eligible, dtype=bool)
    ids = np.nonzero(eligible)[0]
    if len(ids) == 0 or batch_size < 1:
        chosen = np.empty(0, dtype=int)
    else:
        diam = regions.diameters()[ids]
        # Unbounded (never-predicted) regions have infinite diameter and
        # are naturally prioritized.
        order = np.argsort(-diam, kind="stable")
        chosen = ids[order[:batch_size]]
    if recorder:
        all_diam = regions.diameters()
        recorder.emit(SelectionMade(
            iteration=iteration,
            selected=[int(i) for i in chosen],
            diameters=[float(all_diam[int(i)]) for i in chosen],
        ))
    return chosen


def select_with_fallback(
    regions: UncertaintyRegions,
    eligible: np.ndarray,
    batch_size: int,
    try_evaluate: Callable[[int], bool],
    recorder=None,
    iteration: int = 0,
) -> tuple[list[int], list[int]]:
    """Eq. (13) selection with fallback past failed evaluations.

    Selects by maximum diameter and evaluates immediately; when the
    chosen candidate fails permanently (``try_evaluate`` returns
    ``False``), it has been marked ineligible by the caller and the rule
    falls through to the next-largest-diameter live candidate, until the
    batch is filled or the eligible pool is exhausted.  On the no-fault
    path exactly one ``SelectionMade`` is emitted per call — the event
    stream is byte-identical to plain :func:`select_next`.

    Args:
        regions: Current uncertainty boxes.
        eligible: Mask of selectable candidates; entries are cleared
            in place as candidates are consumed (evaluated or failed).
        batch_size: Target number of successful evaluations.
        try_evaluate: ``(index) -> bool`` — evaluates and records the
            candidate, returning False on permanent failure (after
            quarantining/unmarking it as the policy dictates).
        recorder: Optional trace recorder (passed to
            :func:`select_next`).
        iteration: Loop iteration tag for emitted events.

    Returns:
        ``(evaluated, failed)`` candidate index lists, in evaluation
        order.
    """
    evaluated: list[int] = []
    failed: list[int] = []
    while len(evaluated) < batch_size:
        want = batch_size - len(evaluated)
        chosen = select_next(
            regions, eligible, want, recorder=recorder,
            iteration=iteration,
        )
        if len(chosen) == 0:
            break
        for idx in chosen:
            idx = int(idx)
            eligible[idx] = False
            if try_evaluate(idx):
                evaluated.append(idx)
            else:
                failed.append(idx)
        if len(chosen) < want:
            break
    return evaluated, failed
