"""Selection rule (paper Eq. (13)).

The next configuration sent to the PD tool is the live (undecided or
predicted-Pareto), not-yet-evaluated candidate whose uncertainty region has
the longest diameter — sampling where a single tool run shrinks belief the
most.  Batch mode takes the top-k diameters (the paper's parallel-license
trials).
"""

from __future__ import annotations

import numpy as np

from ..obs.events import SelectionMade
from .uncertainty import UncertaintyRegions


def select_next(
    regions: UncertaintyRegions,
    eligible: np.ndarray,
    batch_size: int = 1,
    recorder=None,
    iteration: int = 0,
) -> np.ndarray:
    """Pick the next configurations to evaluate.

    Args:
        regions: Current uncertainty boxes.
        eligible: Mask of candidates that may be selected (live and
            unsampled).
        batch_size: How many to select.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`
            fed one ``SelectionMade`` per call (with the chosen
            candidates' rectangle diameters).
        iteration: Loop iteration tag for the emitted event.

    Returns:
        Up to ``batch_size`` candidate indices, longest diameter first
        (empty if nothing is eligible).
    """
    eligible = np.asarray(eligible, dtype=bool)
    ids = np.nonzero(eligible)[0]
    if len(ids) == 0 or batch_size < 1:
        chosen = np.empty(0, dtype=int)
    else:
        diam = regions.diameters()[ids]
        # Unbounded (never-predicted) regions have infinite diameter and
        # are naturally prioritized.
        order = np.argsort(-diam, kind="stable")
        chosen = ids[order[:batch_size]]
    if recorder:
        all_diam = regions.diameters()
        recorder.emit(SelectionMade(
            iteration=iteration,
            selected=[int(i) for i in chosen],
            diameters=[float(all_diam[int(i)]) for i in chosen],
        ))
    return chosen
