"""Ask/tell tuning core: Algorithm 1 as an explicit state machine.

:class:`TuningSession` inverts :meth:`PPATuner.tune
<repro.core.tuner.PPATuner.tune>`'s closed loop.  Instead of the tuner
calling the oracle, the *caller* owns the oracle and the session owns
the belief state:

- :meth:`TuningSession.ask` returns the next candidate indices the
  selection rule (Eq. (13)) wants evaluated — initialization samples
  first, then per-iteration max-diameter batches, then the final
  golden-verification set;
- :meth:`TuningSession.tell` feeds one candidate's golden QoR vector
  (or an :class:`EvaluationFailure`) back and advances calibration,
  decision-rule, quarantine and stop-reason state.

Driving a session with :func:`drive` reproduces ``PPATuner.tune``
exactly — same Pareto indices, same evaluation order, same trace event
stream — because ``tune`` itself is that driver.  The session's phases:

.. code-block:: text

          ask: init samples            ask: Eq. 13 batches
        +--------+  all told  +--------+  stop rule  +----------+
        |  init  | ---------> |  loop  | ----------> |  verify  |
        +--------+ delta, GPs +--------+  _finalize  +----------+
                                 ^  |                  ask: pareto set
                                 +--+                      | all told,
                             tell/reselect                 | dominance
                                                           v filter
                                                       +--------+
                                                       |  done  |
                                                       +--------+

The reported front is re-filtered for mutual non-dominance on the
*golden* values after verification: midpoint admission in ``_finalize``
decides what is worth a verification run, but only mutually
non-dominated golden rows are reported (the paper's δ-accurate set).

Sessions serialize: :meth:`TuningSession.snapshot` captures the full
state (masks, regions, observations, RNG, fault counters, pending
asks, and the calibration call log) as arrays plus JSON metadata, and
:meth:`TuningSession.restore` rebuilds a bit-identical session by
replaying the logged calibration calls against freshly constructed
GP models — a killed session resumes mid-run and finishes with output
identical to an uninterrupted one.  The service layer
(:mod:`repro.service`) persists these snapshots through an atomic
store and exposes ask/tell over HTTP.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from dataclasses import dataclass

import numpy as np

from ..gp.kernels import make_kernel
from ..gp.multisource import MultiSourceTransferGP
from ..gp.transfer_gp import TransferGP
from ..obs.events import (
    IterationEnd,
    IterationStart,
    PointQuarantined,
    PoolRefined,
    RunEnd,
    RunStart,
)
from ..obs.recorder import NULL_RECORDER
from ..pareto.dominance import pareto_indices as pareto_rows
from ..space.sampling import latin_hypercube_unit
from .calibration import CalibrationEngine
from .config import PPATunerConfig
from .decision import apply_decision_rules
from .result import IterationRecord, TuningResult
from .selection import select_batch, select_next
from .uncertainty import UncertaintyRegions, prediction_rectangle

__all__ = [
    "SNAPSHOT_VERSION",
    "EvaluationFailure",
    "TuningSession",
    "drive",
]

#: Snapshot-format version; bump when the serialized layout changes.
SNAPSHOT_VERSION = 1

_PHASES = ("init", "loop", "verify", "done")


@dataclass(frozen=True)
class EvaluationFailure:
    """A permanently failed evaluation, reported through ``tell``.

    Attributes:
        error: Exception class name of the permanent failure.
        attempts: Evaluation attempts consumed before giving up.
        circuit_open: True when the failure was the circuit breaker's
            systemic fast-fail — the candidate is skipped this round
            but *not* quarantined (it is not the candidate's fault).
    """

    error: str = ""
    attempts: int = 0
    circuit_open: bool = False

    def to_json(self) -> dict:
        """Flat JSON dict (service transport)."""
        return {
            "error": self.error,
            "attempts": int(self.attempts),
            "circuit_open": bool(self.circuit_open),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "EvaluationFailure":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            error=str(payload.get("error", "")),
            attempts=int(payload.get("attempts", 0)),
            circuit_open=bool(payload.get("circuit_open", False)),
        )


class TuningSession:
    """Stepwise ask/tell state machine over one candidate pool.

    Example:
        >>> session = TuningSession(cfg, X_pool, oracle.n_objectives)
        ...                                             # doctest: +SKIP
        >>> while not session.done:                     # doctest: +SKIP
        ...     for idx in session.ask():
        ...         session.tell(idx, oracle.evaluate(idx))
        >>> session.result().pareto_indices             # doctest: +SKIP

    Args:
        config: Loop hyperparameters (see :class:`PPATunerConfig`).
        X_pool: ``(n, d)`` raw feature matrix of the target pool.
        n_objectives: QoR metric count the teller will report.
        X_source: Single source-task features (mutually exclusive with
            ``sources``).
        Y_source: Single source-task golden objectives.
        sources: Multiple ``(X_k, Y_k)`` historical archives.
        init_indices: Explicit initial evaluations; sampled from the
            config seed when omitted.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`;
            the session emits the exact event stream of a closed-loop
            ``PPATuner.tune`` run.

    Raises:
        ValueError: On shape mismatches or conflicting source
            arguments (same contract as ``PPATuner.tune``).
    """

    def __init__(
        self,
        config: PPATunerConfig,
        X_pool: np.ndarray,
        n_objectives: int,
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
        init_indices: np.ndarray | None = None,
        recorder=None,
    ) -> None:
        cfg = config
        self.config = cfg
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._started = time.perf_counter()
        self._elapsed_before = 0.0

        self.X_pool = np.atleast_2d(np.asarray(X_pool, dtype=float))
        n = len(self.X_pool)
        m = int(n_objectives)
        self.n = n
        self.m = m

        if sources is not None and X_source is not None:
            raise ValueError(
                "pass either X_source/Y_source or sources, not both"
            )
        if sources is None:
            sources = (
                [(X_source, Y_source)]
                if X_source is not None and Y_source is not None
                else []
            )
        source_list: list[tuple[np.ndarray, np.ndarray]] = []
        if cfg.transfer:
            for Xs, Ys in sources:
                Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
                Ys = np.atleast_2d(np.asarray(Ys, dtype=float))
                if len(Xs) == 0:
                    continue
                if len(Xs) != len(Ys):
                    raise ValueError("source X/Y misaligned")
                if Ys.shape[1] != m:
                    raise ValueError("source objectives mismatch oracle")
                source_list.append((Xs, Ys))
        self.source_list = source_list
        self._prepare_normalization()

        # ---- Initialization (Algorithm 1 lines 1-2). ----
        rng = np.random.default_rng(cfg.seed)
        if init_indices is None:
            n_init = max(cfg.min_init, int(round(n * cfg.init_fraction)))
            n_init = min(n_init, n)
            if cfg.warm_start == "copula" and source_list:
                # Copula-ranked seeds blended with a uniform fill, both
                # from SeedSequence-derived streams: the main generator
                # is never consumed here, so the ``warm_start="random"``
                # path below stays bit-identical to the pre-warm-start
                # trajectory.
                from ..copula.warm_start import copula_warm_start_indices

                init_indices = copula_warm_start_indices(
                    self.X_pool, source_list, n_init, seed=cfg.seed,
                )
            if init_indices is None:
                init_indices = rng.choice(n, size=n_init, replace=False)
        self.init_indices = np.asarray(init_indices, dtype=int)
        self._rng_state = rng.bit_generator.state

        self.sampled = np.zeros(n, dtype=bool)
        self.dropped = np.zeros(n, dtype=bool)
        self.pareto = np.zeros(n, dtype=bool)
        self.quarantined = np.zeros(n, dtype=bool)
        self.y_obs = np.full((n, m), np.nan)
        self.regions = UncertaintyRegions.unbounded(n, m)
        self.delta = np.zeros(m)
        self._delta_norm = 0.0

        self.models: list = []
        self.engine: CalibrationEngine | None = None

        self.history: list[IterationRecord] = []
        self.stop_reason = "max_iterations"
        self.n_failed = 0
        self._n_evaluations = 0
        self._loop_runs = 0
        self._eval_order: list[int] = []
        self._calib_log: list[tuple[int, tuple[int, ...], int]] = []

        self._phase = "init"
        self._t = 0
        self._in_iteration = False
        self._pending: list[int] = [int(i) for i in self.init_indices]
        # Out-of-order tells within a batch buffer here until the head
        # of ``_pending`` arrives; application order stays ask order.
        self._told: dict[int, tuple] = {}
        self._pool_log: list[tuple[int, int]] = []
        self._eligible = np.zeros(n, dtype=bool)
        self._evaluated_now: list[int] = []
        self._failed_now: list[int] = []
        self._new_indices: list[int] = []
        self._last_want = 0
        self._last_chosen = 0
        self._verify_kept: list[int] = []
        self._verify_rows: list[np.ndarray] = []
        self._result: TuningResult | None = None

    # ------------------------------------------------------------------
    # construction helpers

    def _prepare_normalization(self) -> None:
        """Joint unit-cube normalization of pool + source features."""
        use_source = bool(self.source_list)
        X_source = (
            np.vstack([Xs for Xs, _ in self.source_list])
            if use_source else np.empty((0, self.X_pool.shape[1]))
        )
        Y_source = (
            np.vstack([Ys for _, Ys in self.source_list])
            if use_source else np.empty((0, self.m))
        )
        stacked = np.vstack([self.X_pool, X_source])
        lo, hi = stacked.min(axis=0), stacked.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        self.use_source = use_source
        self.Y_source = Y_source
        # Refined candidates are clipped into [lo, hi], so the joint
        # normalization is invariant under pool growth — a restored
        # grown pool reproduces these exact constants.
        self._norm_lo = lo
        self._norm_hi = hi
        self._norm_span = span
        self._Xn_pool = (self.X_pool - lo) / span
        self._Xn_sources = [
            ((Xs - lo) / span, Ys) for Xs, Ys in self.source_list
        ]
        self._Xn_source = (
            (X_source - lo) / span if len(X_source) else X_source
        )
        self.multi = len(self._Xn_sources) > 1

    def _build_models(self) -> None:
        """One fresh surrogate per metric (deterministic seeds)."""
        cfg = self.config
        d = self.X_pool.shape[1]
        if self.multi:
            self.models = [
                MultiSourceTransferGP(
                    kernel=make_kernel(cfg.kernel, d, 0.3, 1.0),
                    # Optimistic prior (lambda ~ 0.67): archives are
                    # presumed relevant until the likelihood says
                    # otherwise; the default a=b=1 starts exactly at
                    # lambda=0, a saddle the optimizer can stall on.
                    a=0.2,
                    b=1.0,
                    n_restarts=max(cfg.n_restarts, 2),
                    seed=cfg.seed + j,
                )
                for j in range(self.m)
            ]
        else:
            self.models = [
                TransferGP(
                    kernel=make_kernel(cfg.kernel, d, 0.3, 1.0),
                    n_restarts=cfg.n_restarts,
                    seed=cfg.seed + j,
                )
                for j in range(self.m)
            ]

    def _build_engine(self, recorder, n_pool: int | None = None) -> None:
        self.engine = CalibrationEngine(
            self.models, self.config, multi=self.multi,
            sources=self._Xn_sources, X_source=self._Xn_source,
            Y_source=self.Y_source, recorder=recorder,
        )
        pool = (
            self._Xn_pool if n_pool is None else self._Xn_pool[:n_pool]
        )
        self.engine.register_pool(pool)

    # ------------------------------------------------------------------
    # public surface

    @property
    def phase(self) -> str:
        """Current phase: ``init``, ``loop``, ``verify`` or ``done``."""
        return self._phase

    @property
    def iteration(self) -> int:
        """Current loop iteration counter."""
        return self._t

    @property
    def done(self) -> bool:
        """Whether the session has produced its final result."""
        return self._phase == "done"

    @property
    def n_evaluations(self) -> int:
        """Tool runs the session believes have happened so far."""
        return self._n_evaluations

    def status(self) -> dict:
        """Small JSON-serializable progress digest (service surface)."""
        return {
            "phase": self._phase,
            "iteration": int(self._t),
            "n_evaluations": int(self._n_evaluations),
            "n_pareto": int(self.pareto.sum()),
            "n_dropped": int(self.dropped.sum()),
            "n_quarantined": int(self.quarantined.sum()),
            "n_pending": len(self._pending),
            "n_pool": int(self.n),
            "stop_reason": self.stop_reason if self.done else "",
            "done": self.done,
        }

    def ask(self) -> list[int]:
        """Candidate indices awaiting evaluation, in evaluation order.

        Advances the state machine until there is something to evaluate
        (or the session is done): finishing initialization derives δ and
        builds the surrogates; entering a loop iteration calibrates,
        shrinks rectangles, applies the decision rules, and selects per
        Eq. (13); exhausting the loop runs ``_finalize`` and queues the
        golden-verification set.  Idempotent while results are
        outstanding — repeated calls return the same not-yet-told
        indices (a buffered out-of-order tell is not re-asked).

        With ``config.q > 1`` the loop phase queues up to ``q`` diverse
        candidates per synchronous round (see
        :func:`~repro.core.selection.select_batch`); their tells may
        arrive in any order within the batch.

        Returns:
            Indices to evaluate and ``tell`` back, in order; empty once
            the session is done.
        """
        while not self._pending and self._phase != "done":
            if self._phase == "init":
                self._finish_init()
            elif self._phase == "loop":
                if self._in_iteration:
                    self._continue_iteration()
                else:
                    self._begin_iteration()
            elif self._phase == "verify":
                self._finish_verify()
        if self._told:
            return [i for i in self._pending if i not in self._told]
        return list(self._pending)

    def tell(
        self,
        index: int,
        values: np.ndarray | None = None,
        failure: EvaluationFailure | None = None,
        n_evaluations: int | None = None,
    ) -> None:
        """Report one asked candidate's evaluation outcome.

        Within one asked batch, tells may arrive in *any* order: a tell
        for a pending-but-not-head index is buffered and re-sequenced —
        outcomes are always applied in ask order, so the evaluation
        order (and with it the reproducibility contract) is independent
        of which concurrent evaluation finished first.  Every buffered
        outcome is applied before the next :meth:`ask` can advance the
        state machine.

        Args:
            index: A candidate index of the last :meth:`ask`; each
                pending index must be told exactly once.
            values: Golden QoR vector (NaN entries mark a partial
                report; the region stays open on those metrics).
            failure: Permanent-failure descriptor instead of a value;
                quarantines the candidate unless it was a circuit
                fast-fail.
            n_evaluations: The oracle's authoritative distinct-run count
                after this evaluation; when omitted the session counts
                distinct successful evaluations itself.

        Raises:
            RuntimeError: If the session is done or nothing is pending.
            ValueError: On an index that is not pending (or was already
                told), a missing/conflicting outcome, or a malformed
                QoR vector.
        """
        if self._phase == "done":
            raise RuntimeError("session is done; nothing to tell")
        if not self._pending:
            raise RuntimeError("tell() without an outstanding ask()")
        index = int(index)
        if (values is None) == (failure is None):
            raise ValueError("tell exactly one of values or failure")
        if values is not None:
            values = np.asarray(values, dtype=float).ravel()
            if values.shape != (self.m,):
                raise ValueError(
                    f"expected {self.m} objective values, "
                    f"got {values.shape}"
                )
        if index != self._pending[0]:
            if index not in self._pending:
                raise ValueError(
                    f"out-of-order tell: expected one of pending "
                    f"candidate(s) {self._pending}, got {index}"
                )
            if index in self._told:
                raise ValueError(
                    f"duplicate tell for candidate {index}"
                )
            # Out-of-order within the batch: buffer; applied in ask
            # order once the head outcome arrives.
            self._told[index] = (values, failure, n_evaluations)
            return
        self._apply_tell(index, values, failure, n_evaluations)
        while self._pending and self._pending[0] in self._told:
            head = self._pending[0]
            v, f, ne = self._told.pop(head)
            self._apply_tell(head, v, f, ne)

    def _apply_tell(
        self,
        index: int,
        values: np.ndarray | None,
        failure: EvaluationFailure | None,
        n_evaluations: int | None,
    ) -> None:
        """Apply one outcome for the head of ``_pending``."""
        self._pending.pop(0)

        if values is not None:
            value = np.asarray(values, dtype=float).ravel()
            if value.shape != (self.m,):
                raise ValueError(
                    f"expected {self.m} objective values, "
                    f"got {value.shape}"
                )
            fresh = not self.sampled[index]
            if self._phase in ("init", "loop"):
                self.y_obs[index] = value
                self.sampled[index] = True
                if np.all(np.isfinite(value)):
                    self.regions.collapse(index, value)
                else:
                    # Partial QoR report: pin the observed metrics,
                    # keep the missing metrics' interval open.
                    self.regions.collapse_partial(index, value)
                if fresh:
                    self._eval_order.append(index)
                if self._phase == "loop":
                    self._evaluated_now.append(index)
                if n_evaluations is None and fresh:
                    self._n_evaluations += 1
            else:  # verify
                self._verify_kept.append(index)
                self._verify_rows.append(value)
            if n_evaluations is not None:
                # Counts are monotone; buffered out-of-order tells can
                # apply a stale (earlier-completed) count last, so the
                # largest reported count is the authoritative one.
                self._n_evaluations = max(
                    self._n_evaluations, int(n_evaluations)
                )
            return

        # ---- failure path ----
        self.n_failed += 1
        if n_evaluations is not None:
            self._n_evaluations = max(
                self._n_evaluations, int(n_evaluations)
            )
        if self._phase == "loop":
            self._failed_now.append(index)
        if failure.circuit_open:
            # Systemic rejection, not the candidate's fault: skip it
            # this round without quarantining.
            return
        self.quarantined[index] = True
        if self._phase in ("init", "loop"):
            self.dropped[index] = True
            self.pareto[index] = False
        rec = self.recorder
        if rec:
            rec.emit(PointQuarantined(
                index=index,
                iteration=self._t if self._phase == "loop" else -1,
                attempts=failure.attempts,
                error=failure.error,
            ))

    def stop(self, reason: str = "stopped") -> None:
        """Abort the loop and jump to golden verification.

        Pending asks are discarded; a partially completed iteration is
        closed out (its ``IterationEnd`` reflects what actually ran).
        Used by the service layer to enforce per-session evaluation
        budgets (``reason="budget_exhausted"``).
        """
        if self._phase in ("verify", "done"):
            return
        self._pending = []
        self._told.clear()
        if self._phase == "init":
            self._finish_init()
        if self._in_iteration:
            self._close_iteration()
            self._in_iteration = False
            self._t += 1
        self.stop_reason = reason
        self._enter_verify()

    def result(self) -> TuningResult:
        """The final :class:`TuningResult`.

        Raises:
            RuntimeError: While the session is still running.
        """
        if self._result is None:
            raise RuntimeError("session not finished; keep ask()ing")
        return self._result

    # ------------------------------------------------------------------
    # phase transitions

    def _finish_init(self) -> None:
        """Derive δ, emit ``RunStart`` and build the surrogates."""
        cfg = self.config
        m = self.m
        # Absolute δ from the observed objective ranges (Eq. (11)/(12)).
        seen = (
            np.vstack([self.Y_source, self.y_obs[self.sampled]])
            if self.use_source else self.y_obs[self.sampled]
        )
        if seen.size == 0:
            obj_range = np.ones(m)
        else:
            with warnings.catch_warnings():
                # All-NaN columns (every observation of a metric was a
                # partial failure) warn before yielding NaN; the
                # finite-guard below handles them.
                warnings.simplefilter("ignore", RuntimeWarning)
                obj_range = np.nanmax(seen, axis=0) - np.nanmin(
                    seen, axis=0
                )
        obj_range = np.where(
            np.isfinite(obj_range) & (obj_range > 0), obj_range, 1.0
        )
        self.delta = np.broadcast_to(
            np.asarray(cfg.delta_rel, dtype=float), (m,)
        ) * obj_range
        self._delta_norm = float(np.linalg.norm(self.delta))

        rec = self.recorder
        if rec:
            rec.emit(RunStart(
                n_candidates=self.n,
                n_objectives=m,
                seed=cfg.seed,
                n_init=len(self.init_indices),
                n_sources=len(self.source_list),
                delta=[float(d) for d in self.delta],
            ))
        self._build_models()
        self._build_engine(rec)
        self._phase = "loop"

    def _begin_iteration(self) -> None:
        """Calibrate, shrink, decide and select for iteration ``t``."""
        cfg = self.config
        rec = self.recorder
        t = self._t
        if t >= cfg.max_iterations:
            self._enter_verify()
            return
        undecided = ~self.dropped & ~self.pareto
        # The loop runs while anything is undecided, and — per the
        # selection rule (Eq. (13)), which samples Pareto-classified
        # points too — while a classified point's region is still
        # materially larger than δ and unverified by the tool.
        unverified = (
            self.pareto & ~self.sampled
            & (self.regions.diameters() > self._delta_norm)
            & self.regions.is_bounded()
        )
        if not undecided.any() and not unverified.any():
            self.stop_reason = "all_decided"
            self._enter_verify()
            return

        # ---- Adaptive pool refinement (zoom the discretization). ----
        if (
            cfg.pool_refine_every > 0
            and t > 0
            and t % cfg.pool_refine_every == 0
        ):
            self._refine_pool(t)
            undecided = ~self.dropped & ~self.pareto

        if rec:
            rec.emit(IterationStart(
                iteration=t,
                n_undecided=int(undecided.sum()),
                n_pareto=int(self.pareto.sum()),
                n_dropped=int(self.dropped.sum()),
            ))

        # ---- Model calibration (lines 4-6). ----
        active = ~self.dropped & ~self.sampled
        self._calib_log.append((
            t, tuple(int(i) for i in self._new_indices),
            len(self._eval_order),
        ))
        self.engine.calibrate(
            t, self._Xn_pool, self.sampled, self.y_obs, self._new_indices
        )
        active_ids = np.nonzero(active)[0]
        mean, std = self.engine.predict(
            active_ids, include_noise=cfg.noise_in_regions
        )
        rect_lo, rect_hi = prediction_rectangle(mean, std, cfg.tau)
        self.regions.intersect(active_ids, rect_lo, rect_hi)

        # ---- Decision-making (lines 7-9). ----
        newly_dropped, newly_pareto = apply_decision_rules(
            self.regions, undecided, self.pareto, self.delta,
            pareto_delta=cfg.pareto_delta_scale * self.delta,
            recorder=rec, iteration=t,
            backend=cfg.decision_backend,
        )
        self.dropped[newly_dropped] = True
        self.pareto[newly_pareto] = True

        # ---- Selection (lines 10-11): first batch of Eq. (13). ----
        self._eligible = (
            (~self.dropped) & (~self.sampled) & (~self.quarantined)
        )
        self._evaluated_now = []
        self._failed_now = []
        self._in_iteration = True
        self._select(self._round_size())

    def _round_size(self) -> int:
        """Per-round evaluation target: ``q`` supersedes ``batch_size``."""
        cfg = self.config
        return cfg.q if cfg.q > 1 else cfg.batch_size

    def _select(self, want: int) -> None:
        """One selection pass; queues the chosen batch.

        ``q=1`` is the serial Eq. (13) rule (bit-identical to the
        pre-batching path); ``q>1`` runs the greedy fantasy-collapse
        batch rule.
        """
        if self.config.q > 1:
            chosen = select_batch(
                self.regions, self._eligible, want,
                recorder=self.recorder, iteration=self._t,
                penalty=self.config.q_penalty,
            )
        else:
            chosen = select_next(
                self.regions, self._eligible, want,
                recorder=self.recorder, iteration=self._t,
            )
        self._last_want = want
        self._last_chosen = len(chosen)
        if len(chosen) == 0:
            self._end_iteration()
            return
        self._eligible[chosen] = False
        self._pending = [int(i) for i in chosen]

    def _continue_iteration(self) -> None:
        """Post-batch: fall through past failures or end the iteration.

        Mirrors ``select_with_fallback``: while the batch target is
        unmet and the previous pass was not short, select again (the
        fallback past quarantined candidates); otherwise close out the
        iteration.
        """
        want = self._round_size()
        if (
            len(self._evaluated_now) < want
            and self._last_chosen >= self._last_want
        ):
            self._select(want - len(self._evaluated_now))
            return
        self._end_iteration()

    def _refine_pool(self, t: int) -> None:
        """Append zoomed LHS candidates around the live front.

        Adaptive discretization: instead of reasoning over a fixed
        offline table forever, every ``pool_refine_every`` iterations
        fresh Latin-hypercube points are spawned inside zoom boxes
        centred on the highest-diameter live (non-collapsed) rectangles
        — where belief is still widest near the predicted front — and
        appended to the pool.  The GP caches extend incrementally
        (:meth:`CalibrationEngine.extend_pool`); the sample is
        deterministic in ``(seed, t)``, so replay and restore reproduce
        the exact same rows.
        """
        cfg = self.config
        live = ~self.dropped & ~self.sampled & ~self.quarantined
        anchors = np.nonzero(live & self.regions.is_bounded())[0]
        if len(anchors) == 0:
            return
        k = int(cfg.pool_refine_points)
        diam = self.regions.diameters()[anchors]
        order = np.argsort(-diam, kind="stable")
        anchors = anchors[order[: min(len(anchors), k)]]
        rng = np.random.default_rng(np.random.SeedSequence(
            cfg.seed, spawn_key=(0x9E37, t)
        ))
        d = self.X_pool.shape[1]
        counts = np.full(len(anchors), k // len(anchors), dtype=int)
        counts[: k % len(anchors)] += 1
        # Zoom boxes as a fraction of the *observed* span; degenerate
        # dimensions (zero span) stay pinned so the joint normalization
        # constants survive the append unchanged.
        span = self._norm_hi - self._norm_lo
        width = cfg.pool_zoom * span
        rows = []
        for a, c in zip(anchors, counts):
            unit = latin_hypercube_unit(int(c), d, rng)
            box_lo = self.X_pool[int(a)] - 0.5 * width
            rows.append(np.clip(
                box_lo + unit * width, self._norm_lo, self._norm_hi
            ))
        X_new = np.vstack(rows)
        self._grow_pool(X_new)
        self._pool_log.append((t, len(X_new)))
        if self.recorder:
            self.recorder.emit(PoolRefined(
                iteration=t,
                n_new=len(X_new),
                n_pool=self.n,
                n_anchors=len(anchors),
                zoom=float(cfg.pool_zoom),
            ))

    def _grow_pool(self, X_new: np.ndarray) -> None:
        """Extend every per-candidate state array by the new rows."""
        k = len(X_new)
        m = self.m
        self.X_pool = np.vstack([self.X_pool, X_new])
        Xn_new = (X_new - self._norm_lo) / self._norm_span
        self._Xn_pool = np.vstack([self._Xn_pool, Xn_new])
        self.n += k
        self.sampled = np.concatenate(
            [self.sampled, np.zeros(k, dtype=bool)]
        )
        self.dropped = np.concatenate(
            [self.dropped, np.zeros(k, dtype=bool)]
        )
        self.pareto = np.concatenate(
            [self.pareto, np.zeros(k, dtype=bool)]
        )
        self.quarantined = np.concatenate(
            [self.quarantined, np.zeros(k, dtype=bool)]
        )
        self._eligible = np.concatenate(
            [self._eligible, np.zeros(k, dtype=bool)]
        )
        self.y_obs = np.vstack([self.y_obs, np.full((k, m), np.nan)])
        self.regions = UncertaintyRegions(
            lo=np.vstack(
                [self.regions.lo, np.full((k, m), -np.inf)]
            ),
            hi=np.vstack(
                [self.regions.hi, np.full((k, m), np.inf)]
            ),
        )
        if self.engine is not None:
            self.engine.extend_pool(Xn_new)

    def _close_iteration(self) -> None:
        """Record and emit this iteration's bookkeeping."""
        rec = self.recorder
        live = ~self.dropped
        bounded = self.regions.is_bounded() & live
        max_diam = (
            float(self.regions.diameters()[bounded].max())
            if bounded.any() else float("nan")
        )
        record = IterationRecord(
            iteration=self._t,
            n_undecided=int((~self.dropped & ~self.pareto).sum()),
            n_pareto=int(self.pareto.sum()),
            n_dropped=int(self.dropped.sum()),
            n_evaluations=self._n_evaluations,
            max_diameter=max_diam,
            selected=[int(i) for i in self._evaluated_now],
        )
        self.history.append(record)
        if rec:
            rec.emit(IterationEnd(
                iteration=record.iteration,
                n_undecided=record.n_undecided,
                n_pareto=record.n_pareto,
                n_dropped=record.n_dropped,
                n_evaluations=record.n_evaluations,
                max_diameter=record.max_diameter,
                selected=list(record.selected),
            ))

    def _end_iteration(self) -> None:
        self._close_iteration()
        self._new_indices = list(self._evaluated_now)
        stopped = False
        if not self._evaluated_now and not self._failed_now:
            if not (~self.dropped & ~self.pareto).any():
                self.stop_reason = "all_decided"
            else:
                # Nothing evaluable remains; classify leftovers in the
                # finalize pass.  (A failed-only iteration is neither:
                # the quarantine changed the pool, so loop again.)
                self.stop_reason = "pool_exhausted"
            stopped = True
        self._in_iteration = False
        self._t += 1
        if stopped:
            self._enter_verify()

    def _enter_verify(self) -> None:
        """Queue the predicted Pareto set for golden verification."""
        final_pareto = _finalize_mask(
            self.regions, self.dropped, self.pareto, self.y_obs,
            self.sampled, self.quarantined,
        )
        # The paper's "Runs" counts tuning-loop tool invocations; the
        # final verification of predicted Pareto configurations is
        # reported separately, so snapshot the count first.
        self._loop_runs = self._n_evaluations
        self._verify_kept = []
        self._verify_rows = []
        self._pending = [int(i) for i in np.nonzero(final_pareto)[0]]
        self._phase = "verify"

    def _finish_verify(self) -> None:
        """Dominance-filter the verified rows and close the run."""
        rec = self.recorder
        kept = np.asarray(self._verify_kept, dtype=int)
        rows = (
            np.vstack(self._verify_rows)
            if self._verify_rows else np.empty((0, self.m))
        )
        # Midpoint admission in ``_finalize`` selects what is *worth a
        # verification run*; the reported set must additionally be
        # mutually non-dominated in the golden values now in hand —
        # without this filter, dominated points leak into the verified
        # front whenever a region midpoint undersold its true QoR.
        if len(kept) > 1:
            nd = pareto_rows(rows)
            kept = kept[nd]
            rows = rows[nd]
        evaluated = np.nonzero(self.sampled)[0]
        quarantined_idx = np.nonzero(self.quarantined)[0]
        if rec:
            rec.emit(RunEnd(
                stop_reason=self.stop_reason,
                n_iterations=len(self.history),
                n_evaluations=self._loop_runs,
                seconds=self._elapsed(),
                pareto_indices=[int(i) for i in kept],
                evaluated_indices=[int(i) for i in evaluated],
                quarantined_indices=[int(i) for i in quarantined_idx],
                n_failed_evaluations=self.n_failed,
            ))
            rec.flush()
        self._result = TuningResult(
            pareto_indices=kept,
            pareto_points=rows,
            n_evaluations=self._loop_runs,
            n_iterations=len(self.history),
            history=self.history,
            evaluated_indices=evaluated,
            stop_reason=self.stop_reason,
            quarantined_indices=quarantined_idx,
            n_failed_evaluations=self.n_failed,
        )
        self._phase = "done"

    def _elapsed(self) -> float:
        return self._elapsed_before + (
            time.perf_counter() - self._started
        )

    # ------------------------------------------------------------------
    # serialization

    def snapshot(self) -> dict:
        """Serialize the full session state.

        Returns:
            ``{"meta": <json dict>, "arrays": {name: ndarray}}`` — the
            service store writes this as one atomic ``.npz``.  The meta
            carries a SHA-256 fingerprint over every array and the
            metadata itself; :meth:`restore` verifies it.
        """
        # In-place-mutated arrays are copied: the snapshot must stay a
        # faithful point-in-time capture even if this session keeps
        # running (regions/masks/y_obs mutate in place every tell).
        arrays: dict[str, np.ndarray] = {
            "X_pool": self.X_pool.copy(),
            "y_obs": self.y_obs.copy(),
            "regions_lo": self.regions.lo.copy(),
            "regions_hi": self.regions.hi.copy(),
            "sampled": self.sampled.copy(),
            "dropped": self.dropped.copy(),
            "pareto": self.pareto.copy(),
            "quarantined": self.quarantined.copy(),
            "init_indices": self.init_indices.copy(),
            "delta": np.asarray(self.delta, dtype=float),
            "eval_order": np.asarray(self._eval_order, dtype=int),
            "pending": np.asarray(self._pending, dtype=int),
            "eligible": self._eligible.copy(),
            "evaluated_now": np.asarray(self._evaluated_now, dtype=int),
            "failed_now": np.asarray(self._failed_now, dtype=int),
            "new_indices": np.asarray(self._new_indices, dtype=int),
            "verify_kept": np.asarray(self._verify_kept, dtype=int),
            "verify_rows": (
                np.vstack(self._verify_rows)
                if self._verify_rows else np.empty((0, self.m))
            ),
        }
        for k, (Xs, Ys) in enumerate(self.source_list):
            arrays[f"src_x_{k}"] = Xs
            arrays[f"src_y_{k}"] = Ys
        meta = {
            "version": SNAPSHOT_VERSION,
            "config": self.config.to_json(),
            "n_objectives": self.m,
            "n_sources": len(self.source_list),
            "phase": self._phase,
            "t": self._t,
            "in_iteration": self._in_iteration,
            "last_want": self._last_want,
            "last_chosen": self._last_chosen,
            "stop_reason": self.stop_reason,
            "n_failed": self.n_failed,
            "n_evaluations": self._n_evaluations,
            "loop_runs": self._loop_runs,
            "delta_norm": self._delta_norm,
            "elapsed": self._elapsed(),
            "rng_state": _json_rng_state(self._rng_state),
            "calib_log": [
                [t, list(new), n] for t, new, n in self._calib_log
            ],
            "pool_log": [[t, k] for t, k in self._pool_log],
            "told": [
                {
                    "index": int(i),
                    "values": (
                        None if v is None else [float(x) for x in v]
                    ),
                    "failure": None if f is None else f.to_json(),
                    "n_evaluations": (
                        None if ne is None else int(ne)
                    ),
                }
                for i, (v, f, ne) in self._told.items()
            ],
            "history": [h.to_json() for h in self.history],
        }
        if self._result is not None:
            meta["result"] = self._result.to_json()
        meta["fingerprint"] = _fingerprint(meta, arrays)
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def restore(cls, snapshot: dict, recorder=None) -> "TuningSession":
        """Rebuild a session from a :meth:`snapshot`.

        The surrogates are reconstructed by replaying the logged
        calibration calls (exact same data, same order, same
        floating-point operations) against fresh models, so a resumed
        session continues bit-identically to the uninterrupted run.
        Replay emits no trace events — the original emissions are
        already in the run's trace.

        Raises:
            ValueError: On a version mismatch or fingerprint failure
                (torn or tampered snapshot).
        """
        meta = snapshot["meta"]
        arrays = snapshot["arrays"]
        if meta.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {meta.get('version')} != "
                f"{SNAPSHOT_VERSION}"
            )
        expected = meta.get("fingerprint")
        actual = _fingerprint(
            {k: v for k, v in meta.items() if k != "fingerprint"},
            arrays,
        )
        if expected != actual:
            raise ValueError("snapshot fingerprint mismatch")

        cfg = PPATunerConfig.from_json(meta["config"])
        sources = [
            (arrays[f"src_x_{k}"], arrays[f"src_y_{k}"])
            for k in range(int(meta["n_sources"]))
        ]
        self = cls.__new__(cls)
        self.config = cfg
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._started = time.perf_counter()
        self._elapsed_before = float(meta["elapsed"])
        self.X_pool = np.atleast_2d(
            np.asarray(arrays["X_pool"], dtype=float)
        )
        self.n = len(self.X_pool)
        self.m = int(meta["n_objectives"])
        self.source_list = [
            (
                np.atleast_2d(np.asarray(Xs, dtype=float)),
                np.atleast_2d(np.asarray(Ys, dtype=float)),
            )
            for Xs, Ys in sources
        ]
        self._prepare_normalization()

        self.init_indices = np.asarray(arrays["init_indices"], dtype=int)
        self._rng_state = _rng_state_from_json(meta["rng_state"])
        # Copy every mutable per-candidate array: an in-memory snapshot
        # holds references, and a restored session must never share
        # state with the donor session (or with a sibling restored from
        # the same snapshot).
        self.sampled = np.array(arrays["sampled"], dtype=bool)
        self.dropped = np.array(arrays["dropped"], dtype=bool)
        self.pareto = np.array(arrays["pareto"], dtype=bool)
        self.quarantined = np.array(arrays["quarantined"], dtype=bool)
        self.y_obs = np.array(arrays["y_obs"], dtype=float)
        self.regions = UncertaintyRegions(
            lo=np.array(arrays["regions_lo"], dtype=float),
            hi=np.array(arrays["regions_hi"], dtype=float),
        )
        self.delta = np.asarray(arrays["delta"], dtype=float)
        self._delta_norm = float(meta["delta_norm"])

        self.history = [
            IterationRecord.from_json(h) for h in meta["history"]
        ]
        self.stop_reason = meta["stop_reason"]
        self.n_failed = int(meta["n_failed"])
        self._n_evaluations = int(meta["n_evaluations"])
        self._loop_runs = int(meta["loop_runs"])
        self._eval_order = [int(i) for i in arrays["eval_order"]]
        self._calib_log = [
            (int(t), tuple(int(i) for i in new), int(n))
            for t, new, n in meta["calib_log"]
        ]
        self._pool_log = [
            (int(t), int(k)) for t, k in meta.get("pool_log", [])
        ]
        self._told = {}
        for item in meta.get("told", []):
            self._told[int(item["index"])] = (
                (
                    None if item["values"] is None
                    else np.asarray(item["values"], dtype=float)
                ),
                (
                    None if item["failure"] is None
                    else EvaluationFailure.from_json(item["failure"])
                ),
                (
                    None if item["n_evaluations"] is None
                    else int(item["n_evaluations"])
                ),
            )

        self._phase = meta["phase"]
        self._t = int(meta["t"])
        self._in_iteration = bool(meta["in_iteration"])
        self._pending = [int(i) for i in arrays["pending"]]
        self._eligible = np.array(arrays["eligible"], dtype=bool)
        self._evaluated_now = [int(i) for i in arrays["evaluated_now"]]
        self._failed_now = [int(i) for i in arrays["failed_now"]]
        self._new_indices = [int(i) for i in arrays["new_indices"]]
        self._last_want = int(meta["last_want"])
        self._last_chosen = int(meta["last_chosen"])
        self._verify_kept = [int(i) for i in arrays["verify_kept"]]
        rows = np.atleast_2d(
            np.asarray(arrays["verify_rows"], dtype=float)
        )
        self._verify_rows = [rows[i] for i in range(len(
            arrays["verify_rows"]
        ))]
        self._result = (
            TuningResult.from_json(meta["result"])
            if "result" in meta else None
        )

        self.models = []
        self.engine = None
        if self._phase != "init":
            self._replay_calibration()
        return self

    def _replay_calibration(self) -> None:
        """Reconstruct the surrogate state from the calibration log.

        Fresh models run the exact calibrate sequence of the original
        session — same training subsets, same incremental-vs-refit
        cadence, same pool-cache materialization points — which makes
        the resumed posterior bit-identical, not merely close.  Events
        are suppressed (the engine gets the null recorder) because the
        original calibrations are already on the trace.

        Pool growth replays too: the engine starts from the *initial*
        pool and the logged refinement appends are re-applied right
        before the calibrate call of their iteration — the same
        cache-extension pattern (and therefore the same floating-point
        path) as the live run.
        """
        self._build_models()
        grown = self.n - sum(k for _, k in self._pool_log)
        self._build_engine(NULL_RECORDER, n_pool=grown)
        cfg = self.config
        growth = list(self._pool_log)
        g = 0
        for t, new, n_order in self._calib_log:
            while g < len(growth) and growth[g][0] <= t:
                k = growth[g][1]
                self.engine.extend_pool(
                    self._Xn_pool[grown:grown + k]
                )
                grown += k
                g += 1
            sampled_then = np.zeros(self.n, dtype=bool)
            sampled_then[self._eval_order[:n_order]] = True
            self.engine.calibrate(
                t, self._Xn_pool, sampled_then, self.y_obs, list(new)
            )
            # The live loop predicts right after calibrating, which is
            # when the models materialize (or border-extend) their pool
            # caches; replaying the same pattern keeps every subsequent
            # prediction on the identical floating-point path.
            self.engine.predict(
                np.zeros(1, dtype=int),
                include_noise=cfg.noise_in_regions,
            )
        self.engine.recorder = (
            self.recorder if self.recorder else NULL_RECORDER
        )


def drive(
    session: TuningSession,
    oracle,
    policy=None,
) -> TuningResult:
    """Run a session to completion against an in-process oracle.

    The closed-loop driver ``PPATuner.tune`` is built on: ask, evaluate,
    tell, repeat.  Permanent failures are fed back as
    :class:`EvaluationFailure` (or re-raised when the policy says so).

    With ``config.q > 1``, multi-candidate loop batches are dispatched
    through ``oracle.evaluate_batch`` first — concurrent under a
    parallel oracle — and fall back to the serial per-index path on any
    batch-level failure, preserving per-point retry and quarantine
    semantics (already-evaluated points are then served from the
    oracle's cache).  When adaptive pool refinement has grown the
    session's pool past the oracle, the new candidate rows are handed
    to ``oracle.extend`` before evaluation.

    Args:
        session: The session to drive.
        oracle: Any :class:`~repro.core.oracle.Oracle`; wrap it in a
            :class:`~repro.reliability.ResilientOracle` first for
            retry/breaker behavior.
        policy: The governing
            :class:`~repro.reliability.FaultPolicy`; ``None`` (or
            ``on_permanent_failure="raise"``) propagates failures.

    Returns:
        The session's final :class:`TuningResult`.

    Raises:
        RuntimeError: If pool refinement grew the pool and the oracle
            has no ``extend`` capability.
    """
    from ..reliability.errors import (
        CircuitOpenError,
        PermanentEvaluationError,
    )

    while True:
        pending = session.ask()
        if not pending:
            break
        if session.n > oracle.n_candidates:
            _extend_oracle(
                oracle, session.X_pool[oracle.n_candidates:]
            )
        if len(pending) > 1 and session.config.q > 1:
            if _drive_batch(session, oracle, pending):
                continue
        for idx in pending:
            idx = int(idx)
            try:
                value = np.asarray(
                    oracle.evaluate(idx), dtype=float
                ).ravel()
            except PermanentEvaluationError as exc:
                if policy is None or policy.on_permanent_failure == "raise":
                    raise
                session.tell(
                    idx,
                    failure=EvaluationFailure(
                        error=type(exc).__name__,
                        attempts=exc.attempts,
                        circuit_open=isinstance(exc, CircuitOpenError),
                    ),
                    n_evaluations=oracle.n_evaluations,
                )
                continue
            session.tell(
                idx, value, n_evaluations=oracle.n_evaluations
            )
    return session.result()


def _drive_batch(session, oracle, pending: list[int]) -> bool:
    """One concurrent ``evaluate_batch`` dispatch of a pending batch.

    Returns True when every pending candidate was evaluated and told;
    False to fall back to the serial per-index path (which owns the
    per-point failure handling — any successes of the aborted batch
    attempt are re-served from the oracle's cache).
    """
    try:
        rows = np.atleast_2d(np.asarray(
            oracle.evaluate_batch([int(i) for i in pending]),
            dtype=float,
        ))
    except Exception:
        return False
    if rows.shape[0] != len(pending):
        return False
    n_eval = oracle.n_evaluations
    for idx, row in zip(pending, rows):
        session.tell(int(idx), row.ravel(), n_evaluations=n_eval)
    return True


def _extend_oracle(oracle, X_new: np.ndarray) -> None:
    """Hand refined candidate rows to an extendable oracle."""
    extend = getattr(oracle, "extend", None)
    if extend is None:
        raise RuntimeError(
            "pool refinement grew the candidate pool but the oracle "
            "cannot extend; use an extendable oracle (e.g. "
            "CallableOracle or a FlowOracle with a decoder) or set "
            "pool_refine_every=0"
        )
    extend(X_new)


def _finalize_mask(
    regions: UncertaintyRegions,
    dropped: np.ndarray,
    pareto: np.ndarray,
    y_obs: np.ndarray,
    sampled: np.ndarray,
    quarantined: np.ndarray,
) -> np.ndarray:
    """Final Pareto mask over the pool (verification admission).

    Classified-Pareto candidates are kept; undecided survivors are
    admitted if their representative point is non-dominated within the
    live set (handles the T_max-hit case).  Quarantined candidates
    never enter the reported set — their QoR cannot be verified by the
    tool.  This mask selects *candidates for golden verification*; the
    reported set is re-filtered for mutual non-dominance on the golden
    values afterwards.
    """
    live = ~dropped
    # Metric-wise: use the observation where one exists (a partial
    # report observes only some metrics), else the region midpoint.
    observed = sampled[:, None] & np.isfinite(y_obs)
    with np.errstate(invalid="ignore"):
        # Unbounded rectangles yield inf-inf midpoints; those rows
        # are filtered by is_bounded() below, never compared.
        rep = np.where(observed, y_obs, 0.5 * (regions.lo + regions.hi))
    final = pareto.copy()
    live_ids = np.nonzero(live)[0]
    live_ids = live_ids[regions.is_bounded()[live_ids]]
    if len(live_ids):
        nd_rows = pareto_rows(rep[live_ids])
        final[live_ids[nd_rows]] = True
    # Golden values of every tool run are in hand; the observed
    # non-dominated points always belong in the reported set (a
    # δ-dropped point can still be truly Pareto-optimal — δ-accuracy
    # bounds how much better it can be, not whether it exists).
    # Partially-observed rows are excluded: NaN poisons dominance.
    full_rows = sampled & np.all(np.isfinite(y_obs), axis=1)
    sampled_ids = np.nonzero(full_rows)[0]
    if len(sampled_ids):
        nd_rows = pareto_rows(y_obs[sampled_ids])
        final[sampled_ids[nd_rows]] = True
    final[quarantined] = False
    return final


def _json_rng_state(state: dict) -> dict:
    """``bit_generator.state`` → JSON (big ints are JSON-safe)."""
    return json.loads(json.dumps(state, default=int))


def _rng_state_from_json(payload: dict) -> dict:
    return payload


def _fingerprint(meta: dict, arrays: dict) -> str:
    """SHA-256 over the metadata and every array's bytes."""
    digest = hashlib.sha256()
    digest.update(
        json.dumps(meta, sort_keys=True, default=str).encode("utf-8")
    )
    for name in sorted(arrays):
        arr = np.ascontiguousarray(np.asarray(arrays[name]))
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()
