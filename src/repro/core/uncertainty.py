"""Uncertainty hyper-rectangles (paper Eq. (9)-(10) and Figure 2(a)).

Each candidate configuration carries an axis-aligned box in QoR space.
Boxes are built from GP predictions (``mu ± sqrt(tau) sigma``), shrink
monotonically via intersection across iterations, and collapse to the
observed point once a configuration has been evaluated by the tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class UncertaintyRegions:
    """Per-candidate uncertainty boxes over the objective space.

    Attributes:
        lo: ``(n, m)`` optimistic corners (``min(U(x))`` — for
            minimization the best believable outcome).
        hi: ``(n, m)`` pessimistic corners (``max(U(x))``).
    """

    lo: np.ndarray
    hi: np.ndarray

    @classmethod
    def unbounded(cls, n: int, m: int) -> "UncertaintyRegions":
        """The initial ``U_-1 = R^m`` regions (paper Section 3.2.2)."""
        return cls(
            lo=np.full((n, m), -np.inf), hi=np.full((n, m), np.inf)
        )

    def __post_init__(self) -> None:
        self.lo = np.atleast_2d(np.asarray(self.lo, dtype=float))
        self.hi = np.atleast_2d(np.asarray(self.hi, dtype=float))
        if self.lo.shape != self.hi.shape:
            raise ValueError("lo/hi shape mismatch")

    @property
    def n(self) -> int:
        """Number of candidates."""
        return self.lo.shape[0]

    @property
    def m(self) -> int:
        """Number of objectives."""
        return self.lo.shape[1]

    def intersect(
        self,
        indices: np.ndarray,
        new_lo: np.ndarray,
        new_hi: np.ndarray,
    ) -> None:
        """Apply ``U_t = U_{t-1} ∩ R`` (Eq. (10)) for ``indices``.

        If a fresh prediction is disjoint from the accumulated region
        (possible when the GP moves after refitting), the intersection
        degenerates; we then collapse to the point of the *previous*
        region nearest the new prediction — staying inside the old
        region preserves monotone non-growth while acknowledging the
        new evidence's direction.
        """
        indices = np.asarray(indices)
        if indices.size == 0:
            return  # nothing active this iteration — a cheap no-op
        prev_lo = self.lo[indices]
        prev_hi = self.hi[indices]
        lo = np.maximum(prev_lo, new_lo)
        hi = np.minimum(prev_hi, new_hi)
        empty = lo > hi
        if empty.any():
            new_mid = 0.5 * (np.asarray(new_lo) + np.asarray(new_hi))
            nearest = np.clip(new_mid, prev_lo, prev_hi)
            lo = np.where(empty, nearest, lo)
            hi = np.where(empty, nearest, hi)
        self.lo[indices] = lo
        self.hi[indices] = hi

    def collapse(self, index: int, value: np.ndarray) -> None:
        """Pin a region to an observed QoR point (evaluated by the tool).

        Idempotent: re-collapsing an already-collapsed index simply
        re-pins it (the tool's golden value is authoritative).

        Raises:
            ValueError: If ``value`` does not have one entry per
                objective.
        """
        value = np.asarray(value, dtype=float).ravel()
        if value.shape != (self.m,):
            raise ValueError(
                f"expected {self.m} objective values, got {value.shape}"
            )
        self.lo[index] = value
        self.hi[index] = value

    def collapse_partial(self, index: int, value: np.ndarray) -> None:
        """Pin only the *finite* metrics of a partial QoR observation.

        A tool run can come back with some metrics unparsable (NaN).
        The observed metrics are authoritative and collapse to points;
        the missing metrics keep their accumulated interval, so the
        region stays a valid (non-grown) Eq. (10) intersection and the
        candidate remains eligible for δ-decisions once predictions
        tighten the open metrics.

        Raises:
            ValueError: If ``value`` does not have one entry per
                objective.
        """
        value = np.asarray(value, dtype=float).ravel()
        if value.shape != (self.m,):
            raise ValueError(
                f"expected {self.m} objective values, got {value.shape}"
            )
        observed = np.isfinite(value)
        self.lo[index, observed] = value[observed]
        self.hi[index, observed] = value[observed]

    def collapse_batch(
        self, indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Vectorized :meth:`collapse` for many candidates at once.

        Pins every listed region to its observed QoR row in one fancy
        write — equivalent to a per-index :meth:`collapse` loop.

        Raises:
            ValueError: If ``values`` is not ``(len(indices), m)``.
        """
        indices = np.asarray(indices)
        values = np.atleast_2d(np.asarray(values, dtype=float))
        if values.shape != (len(indices), self.m):
            raise ValueError(
                f"expected ({len(indices)}, {self.m}) values, "
                f"got {values.shape}"
            )
        self.lo[indices] = values
        self.hi[indices] = values

    def collapse_partial_batch(
        self, indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Vectorized :meth:`collapse_partial` for many candidates.

        Finite entries pin to points; NaN entries keep each region's
        accumulated interval — equivalent to a per-index
        :meth:`collapse_partial` loop.

        Raises:
            ValueError: If ``values`` is not ``(len(indices), m)``.
        """
        indices = np.asarray(indices)
        values = np.atleast_2d(np.asarray(values, dtype=float))
        if values.shape != (len(indices), self.m):
            raise ValueError(
                f"expected ({len(indices)}, {self.m}) values, "
                f"got {values.shape}"
            )
        observed = np.isfinite(values)
        self.lo[indices] = np.where(observed, values, self.lo[indices])
        self.hi[indices] = np.where(observed, values, self.hi[indices])

    def diameters(self) -> np.ndarray:
        """Euclidean diagonal length of each box (Eq. (13) diameter).

        Unbounded boxes have infinite diameter.
        """
        span = self.hi - self.lo
        return np.sqrt(np.sum(span * span, axis=1))

    def is_bounded(self) -> np.ndarray:
        """Mask of candidates whose boxes are finite in every objective."""
        return np.all(np.isfinite(self.lo) & np.isfinite(self.hi), axis=1)


def prediction_rectangle(
    mean: np.ndarray, std: np.ndarray, tau: float
) -> tuple[np.ndarray, np.ndarray]:
    """Build the per-iteration rectangle R(x) of Eq. (9).

    Args:
        mean: ``(n, m)`` predicted QoR means.
        std: ``(n, m)`` predicted QoR standard deviations.
        tau: Scaling coefficient (half-width is ``sqrt(tau) * std``).

    Returns:
        ``(lo, hi)`` corner arrays.
    """
    mean = np.atleast_2d(np.asarray(mean, dtype=float))
    std = np.atleast_2d(np.asarray(std, dtype=float))
    if mean.shape != std.shape:
        raise ValueError("mean/std shape mismatch")
    if np.any(std < 0):
        raise ValueError("negative standard deviation")
    half = np.sqrt(tau) * std
    return mean - half, mean + half
