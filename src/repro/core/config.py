"""Configuration of the PPATuner loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..reliability.policy import FaultPolicy


@dataclass
class PPATunerConfig:
    """Hyperparameters of Algorithm 1.

    Attributes:
        tau: Uncertainty-region scaling (Eq. (9)); the hyper-rectangle
            half-width is ``sqrt(tau) * sigma``.
        delta_rel: Relaxation vector δ (Eq. (11)/(12)) as a *fraction of
            each objective's observed range*; the absolute δ is derived
            from the initialization data.  Scalar applies to all
            objectives.
        batch_size: Configurations sent to the tool per iteration (the
            paper's parallel-license batch trials).
        max_iterations: ``T_max``.
        kernel: Base kernel family (``"rbf"`` or ``"matern52"``).
        refit_every: Re-optimize GP hyperparameters every this many
            iterations (posteriors are refreshed every iteration).
        reopt_every: Hyperparameter re-optimization cadence for the
            calibration engine; refits are warm-started from the
            previous optimum and trigger an exact refactorization.
            ``None`` (default) inherits ``refit_every``; ``0`` disables
            re-optimization after the initial fit entirely.
        incremental: Use the incremental calibration engine — between
            re-optimizations new evaluations extend the cached Cholesky
            factor (rank-1 border updates) and the cached pool
            cross-covariance instead of refitting from scratch.  The
            posterior is numerically equivalent; set ``False`` to force
            the exact from-scratch path every iteration.
        n_restarts: Hyperparameter-optimizer restarts.
        transfer: If False, source data is ignored (ablation switch).
        noise_in_regions: Include the learned observation-noise variance
            in the uncertainty rectangles (wider, slower, noise-robust
            decisions); default reasons with epistemic uncertainty only.
        pareto_delta_scale: Multiplier on δ for the Pareto-classification
            rule (Eq. (12)).  Classification errors are repaired by the
            final tool verification while wrong drops are permanent, so
            classifying more generously than dropping is safe.
        seed: RNG seed for initial sampling and tie-breaking.
        init_fraction: Fraction of the target pool evaluated during
            initialization (the paper uses "no more than 5%").
        min_init: Lower bound on initial target evaluations.
        fault_policy: How evaluation failures are retried, broken and
            quarantined (see :class:`~repro.reliability.FaultPolicy`).
            The default policy retries transients and quarantines
            permanently failed candidates; ``None`` disables the
            resilience layer entirely — the oracle is called bare and
            every failure propagates.
    """

    tau: float = 16.0
    delta_rel: float | np.ndarray = 0.01
    batch_size: int = 1
    max_iterations: int = 500
    kernel: str = "rbf"
    refit_every: int = 10
    reopt_every: int | None = None
    incremental: bool = True
    n_restarts: int = 1
    transfer: bool = True
    noise_in_regions: bool = False
    pareto_delta_scale: float = 3.0
    seed: int = 0
    init_fraction: float = 0.02
    min_init: int = 5
    fault_policy: FaultPolicy | None = field(default_factory=FaultPolicy)

    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if np.any(np.asarray(self.delta_rel) < 0):
            raise ValueError("delta_rel must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.init_fraction <= 1.0:
            raise ValueError("init_fraction must be in (0, 1]")
        if self.min_init < 1:
            raise ValueError("min_init must be >= 1")
        if self.refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if self.reopt_every is not None and self.reopt_every < 0:
            raise ValueError("reopt_every must be >= 0 (0 = never)")
        if isinstance(self.fault_policy, dict):
            self.fault_policy = FaultPolicy.from_json(self.fault_policy)

    @property
    def effective_reopt_every(self) -> int:
        """Re-optimization cadence: ``reopt_every`` or ``refit_every``."""
        return (
            self.refit_every if self.reopt_every is None
            else self.reopt_every
        )

    def to_json(self) -> dict:
        """Fully JSON-serializable dict (session snapshots, service).

        ``extra`` must itself be JSON-serializable; a vector
        ``delta_rel`` becomes a list and is restored as an array.
        """
        delta = self.delta_rel
        if isinstance(delta, np.ndarray):
            delta = [float(v) for v in delta.ravel()]
        else:
            delta = float(delta)
        return {
            "tau": float(self.tau),
            "delta_rel": delta,
            "batch_size": int(self.batch_size),
            "max_iterations": int(self.max_iterations),
            "kernel": self.kernel,
            "refit_every": int(self.refit_every),
            "reopt_every": (
                None if self.reopt_every is None else int(self.reopt_every)
            ),
            "incremental": bool(self.incremental),
            "n_restarts": int(self.n_restarts),
            "transfer": bool(self.transfer),
            "noise_in_regions": bool(self.noise_in_regions),
            "pareto_delta_scale": float(self.pareto_delta_scale),
            "seed": int(self.seed),
            "init_fraction": float(self.init_fraction),
            "min_init": int(self.min_init),
            "fault_policy": (
                None if self.fault_policy is None
                else self.fault_policy.to_json()
            ),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PPATunerConfig":
        """Rebuild from :meth:`to_json` output.

        Unknown keys are rejected (a snapshot from a newer layout should
        fail loudly, not half-apply); ``__post_init__`` revalidates and
        revives the fault-policy dict.
        """
        data = dict(payload)
        delta = data.get("delta_rel")
        if isinstance(delta, list):
            data["delta_rel"] = np.asarray(delta, dtype=float)
        return cls(**data)
