"""Configuration of the PPATuner loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..reliability.policy import FaultPolicy


@dataclass
class PPATunerConfig:
    """Hyperparameters of Algorithm 1.

    Attributes:
        tau: Uncertainty-region scaling (Eq. (9)); the hyper-rectangle
            half-width is ``sqrt(tau) * sigma``.
        delta_rel: Relaxation vector δ (Eq. (11)/(12)) as a *fraction of
            each objective's observed range*; the absolute δ is derived
            from the initialization data.  Scalar applies to all
            objectives.
        batch_size: Configurations sent to the tool per iteration (the
            paper's parallel-license batch trials).
        q: Candidates proposed per synchronous round by the *batched*
            selection rule.  ``q=1`` (default) is the paper's serial
            Eq. (13) rule and is bit-identical to the pre-batching
            trajectory.  ``q>1`` switches to greedy max-diameter
            selection with fantasy collapse and a pairwise distance
            penalty (see :func:`~repro.core.selection.select_batch`) so
            one batch spreads across the live front instead of
            clustering, and ``ask()`` hands back up to ``q`` pending
            indices to evaluate concurrently.
        q_penalty: Strength of the batch diversity penalty; candidate
            scores are damped by ``1 - exp(-dist / (q_penalty * scale))``
            against already-chosen batch members.  Larger values push
            picks further apart.  Ignored when ``q=1``.
        pool_refine_every: Adaptive candidate-pool refinement cadence:
            every this many loop iterations, spawn fresh LHS points
            zoomed around the surviving (live, non-collapsed)
            uncertainty rectangles and append them to the candidate
            pool (incremental cache append — no rebuild).  ``0``
            (default) disables refinement; the pool stays the fixed
            offline table.
        pool_refine_points: New candidates appended per refinement
            round.
        pool_zoom: Half-width of each zoom box, as a fraction of the
            parameter-space span, centred on a live anchor candidate.
        max_iterations: ``T_max``.
        kernel: Base kernel family (``"rbf"`` or ``"matern52"``).
        refit_every: Re-optimize GP hyperparameters every this many
            iterations (posteriors are refreshed every iteration).
        reopt_every: Hyperparameter re-optimization cadence for the
            calibration engine; refits are warm-started from the
            previous optimum and trigger an exact refactorization.
            ``None`` (default) inherits ``refit_every``; ``0`` disables
            re-optimization after the initial fit entirely.
        incremental: Use the incremental calibration engine — between
            re-optimizations new evaluations extend the cached Cholesky
            factor (rank-1 border updates) and the cached pool
            cross-covariance instead of refitting from scratch.  The
            posterior is numerically equivalent; set ``False`` to force
            the exact from-scratch path every iteration.
        shared_factor: Share one Cholesky factorization (and the pool
            cross-covariance caches) across the per-metric GPs whenever
            their covariance hyperparameters are identical — the same X
            and kernel structure mean the factor is computed once and
            only the per-metric RHS solves differ.  Bit-identical to the
            per-model path (it deduplicates identical computations);
            automatically inapplicable once hyperparameter
            re-optimization makes the per-metric covariances diverge.
            Set ``False`` to force fully independent per-GP fits (the
            reference path for the equivalence harness).
        float32_pool: Opt-in float32 storage for the pool prediction
            caches (cross-covariance and whitened blocks).  Halves the
            cache memory so pools of 10^5-10^6 candidates stay
            cache/memory friendly; posterior means/variances move by at
            most ~1e-5 relative (the Cholesky factor and all training
            state stay float64).  Off by default — the float64 path is
            the bit-exact reference.
        pool_block: Row-chunk size for building (and extending) the pool
            prediction caches.  Pools larger than this are evaluated in
            blocks so the kernel's ``(pool, train, dim)`` broadcast
            intermediate never materializes at full pool size.  ``0``
            disables blocking.  Pools at or below the block size use the
            exact pre-blocking code path.
        decision_backend: Implementation of the δ-dominance decision
            pass: ``"vectorized"`` (blocked, cache-friendly whole-pool
            reductions; the default) or ``"reference"`` (the retained
            pre-optimization implementation).  Both return identical
            index sets; the reference backend exists for the
            equivalence harness and as the benchmark baseline.
        n_restarts: Hyperparameter-optimizer restarts.
        transfer: If False, source data is ignored (ablation switch).
        noise_in_regions: Include the learned observation-noise variance
            in the uncertainty rectangles (wider, slower, noise-robust
            decisions); default reasons with epistemic uncertainty only.
        pareto_delta_scale: Multiplier on δ for the Pareto-classification
            rule (Eq. (12)).  Classification errors are repaired by the
            final tool verification while wrong drops are permanent, so
            classifying more generously than dropping is safe.
        seed: RNG seed for initial sampling and tie-breaking.
        init_fraction: Fraction of the target pool evaluated during
            initialization (the paper uses "no more than 5%").
        min_init: Lower bound on initial target evaluations.
        warm_start: How the initial design is drawn when no explicit
            ``init_indices`` are given.  ``"random"`` (default) is the
            paper's uniform draw and is bit-identical to the
            pre-warm-start trajectory; ``"copula"`` ranks pool
            candidates through a Gaussian copula fitted on the source
            archives and blends copula-anchored seeds with a uniform
            fill (see :func:`repro.copula.copula_warm_start_indices`)
            — the few-shot cold-start path.  With no source data the
            copula option falls back to the random draw.
        fault_policy: How evaluation failures are retried, broken and
            quarantined (see :class:`~repro.reliability.FaultPolicy`).
            The default policy retries transients and quarantines
            permanently failed candidates; ``None`` disables the
            resilience layer entirely — the oracle is called bare and
            every failure propagates.
    """

    tau: float = 16.0
    delta_rel: float | np.ndarray = 0.01
    batch_size: int = 1
    q: int = 1
    q_penalty: float = 1.0
    pool_refine_every: int = 0
    pool_refine_points: int = 16
    pool_zoom: float = 0.1
    max_iterations: int = 500
    kernel: str = "rbf"
    refit_every: int = 10
    reopt_every: int | None = None
    incremental: bool = True
    shared_factor: bool = True
    float32_pool: bool = False
    pool_block: int = 32768
    decision_backend: str = "vectorized"
    n_restarts: int = 1
    transfer: bool = True
    noise_in_regions: bool = False
    pareto_delta_scale: float = 3.0
    seed: int = 0
    init_fraction: float = 0.02
    min_init: int = 5
    fault_policy: FaultPolicy | None = field(default_factory=FaultPolicy)
    warm_start: str = "random"

    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if np.any(np.asarray(self.delta_rel) < 0):
            raise ValueError("delta_rel must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.q < 1:
            raise ValueError("q must be >= 1")
        if self.q_penalty <= 0:
            raise ValueError("q_penalty must be positive")
        if self.pool_refine_every < 0:
            raise ValueError("pool_refine_every must be >= 0 (0 = off)")
        if self.pool_refine_points < 1:
            raise ValueError("pool_refine_points must be >= 1")
        if not 0.0 < self.pool_zoom <= 1.0:
            raise ValueError("pool_zoom must be in (0, 1]")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.init_fraction <= 1.0:
            raise ValueError("init_fraction must be in (0, 1]")
        if self.min_init < 1:
            raise ValueError("min_init must be >= 1")
        if self.refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if self.reopt_every is not None and self.reopt_every < 0:
            raise ValueError("reopt_every must be >= 0 (0 = never)")
        if self.pool_block < 0:
            raise ValueError("pool_block must be >= 0 (0 = unblocked)")
        if self.decision_backend not in ("vectorized", "reference"):
            raise ValueError(
                "decision_backend must be 'vectorized' or 'reference'"
            )
        if self.warm_start not in ("random", "copula"):
            raise ValueError(
                "warm_start must be 'random' or 'copula'"
            )
        if isinstance(self.fault_policy, dict):
            self.fault_policy = FaultPolicy.from_json(self.fault_policy)

    @property
    def effective_reopt_every(self) -> int:
        """Re-optimization cadence: ``reopt_every`` or ``refit_every``."""
        return (
            self.refit_every if self.reopt_every is None
            else self.reopt_every
        )

    def to_json(self) -> dict:
        """Fully JSON-serializable dict (session snapshots, service).

        ``extra`` must itself be JSON-serializable; a vector
        ``delta_rel`` becomes a list and is restored as an array.
        """
        delta = self.delta_rel
        if isinstance(delta, np.ndarray):
            delta = [float(v) for v in delta.ravel()]
        else:
            delta = float(delta)
        return {
            "tau": float(self.tau),
            "delta_rel": delta,
            "batch_size": int(self.batch_size),
            "q": int(self.q),
            "q_penalty": float(self.q_penalty),
            "pool_refine_every": int(self.pool_refine_every),
            "pool_refine_points": int(self.pool_refine_points),
            "pool_zoom": float(self.pool_zoom),
            "max_iterations": int(self.max_iterations),
            "kernel": self.kernel,
            "refit_every": int(self.refit_every),
            "reopt_every": (
                None if self.reopt_every is None else int(self.reopt_every)
            ),
            "incremental": bool(self.incremental),
            "shared_factor": bool(self.shared_factor),
            "float32_pool": bool(self.float32_pool),
            "pool_block": int(self.pool_block),
            "decision_backend": self.decision_backend,
            "n_restarts": int(self.n_restarts),
            "transfer": bool(self.transfer),
            "noise_in_regions": bool(self.noise_in_regions),
            "pareto_delta_scale": float(self.pareto_delta_scale),
            "seed": int(self.seed),
            "init_fraction": float(self.init_fraction),
            "min_init": int(self.min_init),
            "fault_policy": (
                None if self.fault_policy is None
                else self.fault_policy.to_json()
            ),
            "warm_start": self.warm_start,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PPATunerConfig":
        """Rebuild from :meth:`to_json` output.

        Unknown keys are rejected (a snapshot from a newer layout should
        fail loudly, not half-apply); ``__post_init__`` revalidates and
        revives the fault-policy dict.
        """
        data = dict(payload)
        delta = data.get("delta_rel")
        if isinstance(delta, list):
            data["delta_rel"] = np.asarray(delta, dtype=float)
        return cls(**data)
