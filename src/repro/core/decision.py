"""Decision-making rules (paper Eq. (11)-(12) and Figure 2(b)).

Minimization semantics.  With uncertainty boxes ``[lo(x), hi(x)]``:

- **Drop** an undecided ``x`` if some other live point ``x'`` δ-dominates
  it even when ``x'`` is judged pessimistically and ``x`` optimistically:
  ``hi(x') <= lo(x) + δ`` in every objective, strictly in one (Eq. (11)).
- **Classify Pareto** an undecided ``x`` if no live point could δ-dominate
  it even when ``x`` is judged pessimistically and the rival
  optimistically: no ``x'`` with ``lo(x') <= hi(x) - δ`` everywhere and
  strict somewhere (Eq. (12) rearranged) — the resulting set is
  δ-accurate.

Both rules only ever compare against the *Pareto front* of the relevant
corner values (a dominator must itself be non-dominated among the
corners), which keeps each pass near-linear instead of quadratic.
"""

from __future__ import annotations

import numpy as np

from ..obs.events import DecisionSummary
from ..pareto.dominance import pareto_indices
from .uncertainty import UncertaintyRegions


#: Chunk size of the blocked δ-domination reduction: 2048 rows keep the
#: (block, block, m) comparison intermediates cache-resident even for
#: pools of 10^5-10^6 candidates, where the old single-shot broadcast
#: would materialize a multi-gigabyte (nf, nq, m) array.
_DOM_BLOCK = 2048


def _dominated_by_any(
    front: np.ndarray,
    front_ids: np.ndarray,
    queries: np.ndarray,
    query_ids: np.ndarray,
    slack: np.ndarray,
    block: int = _DOM_BLOCK,
) -> np.ndarray:
    """Which queries are δ-dominated by some front point other than itself.

    A front point ``f`` δ-dominates query ``q`` iff
    ``f <= q + slack`` componentwise with strict ``<`` somewhere.

    Evaluated in (query × front) blocks — pure elementwise comparisons
    plus an ``any`` reduction over a partitioned axis, so the result is
    bit-identical to the single-shot broadcast for every input; query
    chunks whose rows are all already dominated stop scanning the
    remaining front blocks early.

    Args:
        front: ``(nf, m)`` dominator corner values.
        front_ids: Candidate ids of the front rows (for self-exclusion).
        queries: ``(nq, m)`` query corner values.
        query_ids: Candidate ids of the query rows.
        slack: Length-``m`` δ vector.
        block: Row-chunk size of the reduction.

    Returns:
        Length-``nq`` boolean mask.
    """
    nf, nq = len(front), len(queries)
    if nf == 0 or nq == 0:
        return np.zeros(nq, dtype=bool)
    out = np.empty(nq, dtype=bool)
    for qs in range(0, nq, block):
        qe = min(qs + block, nq)
        relaxed = queries[qs:qe] + slack[None, :]  # (bq, m)
        qid = query_ids[qs:qe]
        dom_q = np.zeros(qe - qs, dtype=bool)
        for fs in range(0, nf, block):
            fe = min(fs + block, nf)
            F = front[fs:fe]
            # (bf, bq): does front i dominate query j?
            weak = np.all(F[:, None, :] <= relaxed[None, :, :], axis=2)
            strict = np.any(F[:, None, :] < relaxed[None, :, :], axis=2)
            not_self = front_ids[fs:fe, None] != qid[None, :]
            dom_q |= np.any(weak & strict & not_self, axis=0)
            if dom_q.all():
                break
        out[qs:qe] = dom_q
    return out


def _dominated_with_second_pass(
    all_values: np.ndarray,
    all_ids: np.ndarray,
    queries: np.ndarray,
    query_ids: np.ndarray,
    slack: np.ndarray,
) -> np.ndarray:
    """δ-domination against the full candidate set, front-accelerated.

    Comparing against the Pareto front of ``all_values`` is sufficient for
    every query *except* one whose only front dominator is itself — for
    those (rare) queries a second pass checks the full set.
    """
    front_rows = pareto_indices(all_values)
    result = _dominated_by_any(
        all_values[front_rows], all_ids[front_rows],
        queries, query_ids, slack,
    )
    # Queries not flagged but sitting on the front themselves might be
    # dominated by second-layer points the front filtered out.
    on_front = np.isin(query_ids, all_ids[front_rows])
    recheck = ~result & on_front
    if recheck.any():
        result[recheck] = _dominated_by_any(
            all_values, all_ids,
            queries[recheck], query_ids[recheck], slack,
        )
    return result


def apply_decision_rules(
    regions: UncertaintyRegions,
    undecided: np.ndarray,
    pareto: np.ndarray,
    delta: np.ndarray,
    pareto_delta: np.ndarray | None = None,
    recorder=None,
    iteration: int = 0,
    backend: str = "vectorized",
) -> tuple[np.ndarray, np.ndarray]:
    """One decision-making pass over the live candidates.

    Args:
        regions: Current uncertainty boxes for the whole pool.
        undecided: Mask of undecided candidates.
        pareto: Mask of candidates already classified Pareto-optimal.
        delta: Length-``m`` absolute relaxation vector δ used by the
            *drop* rule (Eq. (11)).
        pareto_delta: Relaxation used by the *classification* rule
            (Eq. (12)); defaults to ``delta``.  The costs are
            asymmetric — a wrong drop loses a true front point forever,
            while a generous classification is corrected by the final
            tool-verification pass — so classifying with a larger δ than
            dropping is the safe direction.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`
            fed one ``DecisionSummary`` per pass.
        iteration: Loop iteration tag for the emitted event.
        backend: ``"vectorized"`` (blocked whole-pool reductions) or
            ``"reference"`` (the retained pre-optimization pass in
            :mod:`repro.core.reference`); both return identical index
            sets.

    Returns:
        ``(newly_dropped, newly_pareto)`` index arrays (disjoint).
    """
    undecided = np.asarray(undecided, dtype=bool)
    pareto = np.asarray(pareto, dtype=bool)
    if backend == "reference":
        from .reference import decide_reference

        newly_dropped, newly_pareto = decide_reference(
            regions, undecided, pareto, delta, pareto_delta
        )
    elif backend == "vectorized":
        newly_dropped, newly_pareto = _decide(
            regions, undecided, pareto, delta, pareto_delta
        )
    else:
        raise ValueError(
            f"unknown decision backend {backend!r}; "
            "expected 'vectorized' or 'reference'"
        )
    if recorder:
        n = len(undecided)
        n_dropped = (
            n - int(undecided.sum()) - int(pareto.sum())
            + len(newly_dropped)
        )
        recorder.emit(DecisionSummary(
            iteration=iteration,
            n_live=n - n_dropped,
            n_undecided=(
                int(undecided.sum()) - len(newly_dropped)
                - len(newly_pareto)
            ),
            n_pareto=int(pareto.sum()) + len(newly_pareto),
            n_dropped=n_dropped,
            newly_dropped=len(newly_dropped),
            newly_pareto=len(newly_pareto),
        ))
    return newly_dropped, newly_pareto


def _decide(
    regions: UncertaintyRegions,
    undecided: np.ndarray,
    pareto: np.ndarray,
    delta: np.ndarray,
    pareto_delta: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """The decision pass proper (see :func:`apply_decision_rules`)."""
    delta = np.asarray(delta, dtype=float).ravel()
    if delta.shape != (regions.m,):
        raise ValueError(
            f"delta must have {regions.m} entries, got {delta.shape}"
        )
    if pareto_delta is None:
        pareto_delta = delta
    pareto_delta = np.asarray(pareto_delta, dtype=float).ravel()
    if pareto_delta.shape != (regions.m,):
        raise ValueError("pareto_delta must match the objective count")
    live = undecided | pareto
    live_ids = np.nonzero(live)[0]
    und_ids = np.nonzero(undecided)[0]
    if len(und_ids) == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)

    # Only candidates with bounded boxes participate in decisions; the
    # rest wait for their first prediction.
    bounded = regions.is_bounded()
    live_ids = live_ids[bounded[live_ids]]
    und_ids = und_ids[bounded[und_ids]]
    if len(live_ids) == 0 or len(und_ids) == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)

    pess = regions.hi[live_ids]  # max(U(x')) per live point
    opt = regions.lo[live_ids]  # min(U(x')) per live point

    # Eq. (11): drop x if some live x' has hi(x') <= lo(x) + delta.
    dropped_mask = _dominated_with_second_pass(
        pess, live_ids, regions.lo[und_ids], und_ids, delta,
    )
    newly_dropped = und_ids[dropped_mask]

    # Eq. (12): classify x Pareto if no live x' has
    # lo(x') <= hi(x) - delta (i.e. hi(x) <= lo(x') + delta fails for no
    # potential dominator).  Compare against the front of optimistic
    # corners of the *surviving* live set.
    survivors = np.setdiff1d(live_ids, newly_dropped, assume_unique=True)
    if len(survivors) == 0:
        return newly_dropped, np.empty(0, dtype=int)
    surv_opt = regions.lo[survivors]
    candidates = np.setdiff1d(und_ids, newly_dropped, assume_unique=True)
    if len(candidates) == 0:
        return newly_dropped, np.empty(0, dtype=int)
    could_be_dominated = _dominated_with_second_pass(
        surv_opt,
        survivors,
        regions.hi[candidates] - pareto_delta[None, :],
        candidates,
        np.zeros_like(pareto_delta),
    )
    newly_pareto = candidates[~could_be_dominated]
    return newly_dropped, newly_pareto
