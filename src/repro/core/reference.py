"""Retained reference implementations of the decision hot path.

The vectorized/blocked fast paths in :mod:`repro.core.decision` and
:mod:`repro.pareto.dominance` are required to return *identical* index
sets to the code they replaced.  This module keeps that replaced code
alive, verbatim, for three jobs:

- the ``decision_backend="reference"`` config switch (the pre-PR
  decision pass, selectable at runtime);
- the pre-PR baseline arm of ``benchmarks/bench_calibration.py``;
- the scalar per-point oracles the equivalence property tests in
  ``tests/test_fastpath_equivalence.py`` compare against (plain double
  loops straight off the paper's Eq. (11)/(12) definitions — slow, but
  obviously correct).

Nothing here is on the hot path; clarity beats speed throughout.
"""

from __future__ import annotations

import numpy as np

from ..pareto.dominance import non_dominated_mask_reference
from .uncertainty import UncertaintyRegions

__all__ = [
    "decide_reference",
    "dominated_by_any_reference",
    "dominated_by_any_scalar",
    "intersect_scalar",
    "non_dominated_mask_scalar",
    "pareto_indices_reference",
]


def pareto_indices_reference(points: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows (per-point loop baseline)."""
    return np.nonzero(non_dominated_mask_reference(points))[0]


def dominated_by_any_reference(
    front: np.ndarray,
    front_ids: np.ndarray,
    queries: np.ndarray,
    query_ids: np.ndarray,
    slack: np.ndarray,
) -> np.ndarray:
    """Pre-PR δ-domination check: one full (nf, nq, m) broadcast."""
    if len(front) == 0 or len(queries) == 0:
        return np.zeros(len(queries), dtype=bool)
    relaxed = queries[None, :, :] + slack[None, None, :]
    weak = np.all(front[:, None, :] <= relaxed, axis=2)
    strict = np.any(front[:, None, :] < relaxed, axis=2)
    dom = weak & strict
    not_self = front_ids[:, None] != query_ids[None, :]
    return np.any(dom & not_self, axis=0)


def _dominated_with_second_pass_reference(
    all_values: np.ndarray,
    all_ids: np.ndarray,
    queries: np.ndarray,
    query_ids: np.ndarray,
    slack: np.ndarray,
) -> np.ndarray:
    """Pre-PR front-accelerated domination with the on-front recheck."""
    front_rows = pareto_indices_reference(all_values)
    result = dominated_by_any_reference(
        all_values[front_rows], all_ids[front_rows],
        queries, query_ids, slack,
    )
    on_front = np.isin(query_ids, all_ids[front_rows])
    recheck = ~result & on_front
    if recheck.any():
        result[recheck] = dominated_by_any_reference(
            all_values, all_ids,
            queries[recheck], query_ids[recheck], slack,
        )
    return result


def decide_reference(
    regions: UncertaintyRegions,
    undecided: np.ndarray,
    pareto: np.ndarray,
    delta: np.ndarray,
    pareto_delta: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """The pre-PR decision pass (Eq. (11)/(12)), kept verbatim.

    Same contract as ``repro.core.decision._decide``; the vectorized
    backend must return identical ``(newly_dropped, newly_pareto)``
    index arrays for every input.
    """
    delta = np.asarray(delta, dtype=float).ravel()
    if delta.shape != (regions.m,):
        raise ValueError(
            f"delta must have {regions.m} entries, got {delta.shape}"
        )
    if pareto_delta is None:
        pareto_delta = delta
    pareto_delta = np.asarray(pareto_delta, dtype=float).ravel()
    if pareto_delta.shape != (regions.m,):
        raise ValueError("pareto_delta must match the objective count")
    live = undecided | pareto
    live_ids = np.nonzero(live)[0]
    und_ids = np.nonzero(undecided)[0]
    if len(und_ids) == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)

    bounded = regions.is_bounded()
    live_ids = live_ids[bounded[live_ids]]
    und_ids = und_ids[bounded[und_ids]]
    if len(live_ids) == 0 or len(und_ids) == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)

    pess = regions.hi[live_ids]
    opt = regions.lo[live_ids]  # noqa: F841 — kept for parity

    dropped_mask = _dominated_with_second_pass_reference(
        pess, live_ids, regions.lo[und_ids], und_ids, delta,
    )
    newly_dropped = und_ids[dropped_mask]

    survivors = np.setdiff1d(live_ids, newly_dropped, assume_unique=True)
    if len(survivors) == 0:
        return newly_dropped, np.empty(0, dtype=int)
    surv_opt = regions.lo[survivors]
    candidates = np.setdiff1d(und_ids, newly_dropped, assume_unique=True)
    if len(candidates) == 0:
        return newly_dropped, np.empty(0, dtype=int)
    could_be_dominated = _dominated_with_second_pass_reference(
        surv_opt,
        survivors,
        regions.hi[candidates] - pareto_delta[None, :],
        candidates,
        np.zeros_like(pareto_delta),
    )
    newly_pareto = candidates[~could_be_dominated]
    return newly_dropped, newly_pareto


# ---------------------------------------------------------------------
# scalar oracles for the property tests — definition-direct double loops


def non_dominated_mask_scalar(points: np.ndarray) -> np.ndarray:
    """O(n²) definitional non-dominated mask (no sorting, no blocks)."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    for j in range(n):
        for i in range(n):
            if i == j:
                continue
            if bool(
                np.all(pts[i] <= pts[j]) and np.any(pts[i] < pts[j])
            ):
                mask[j] = False
                break
    return mask


def dominated_by_any_scalar(
    front: np.ndarray,
    front_ids: np.ndarray,
    queries: np.ndarray,
    query_ids: np.ndarray,
    slack: np.ndarray,
) -> np.ndarray:
    """Double-loop δ-domination straight off Eq. (11)."""
    front = np.atleast_2d(np.asarray(front, dtype=float))
    queries = np.atleast_2d(np.asarray(queries, dtype=float))
    slack = np.asarray(slack, dtype=float).ravel()
    out = np.zeros(len(queries), dtype=bool)
    for j in range(len(queries)):
        relaxed = queries[j] + slack
        for i in range(len(front)):
            if front_ids[i] == query_ids[j]:
                continue
            if bool(
                np.all(front[i] <= relaxed)
                and np.any(front[i] < relaxed)
            ):
                out[j] = True
                break
    return out


def intersect_scalar(
    regions: UncertaintyRegions,
    indices: np.ndarray,
    new_lo: np.ndarray,
    new_hi: np.ndarray,
) -> None:
    """Per-point Eq. (10) intersection with the degenerate fallback.

    Mutates ``regions`` exactly like
    :meth:`~repro.core.uncertainty.UncertaintyRegions.intersect`, one
    candidate at a time.
    """
    indices = np.asarray(indices)
    new_lo = np.atleast_2d(np.asarray(new_lo, dtype=float))
    new_hi = np.atleast_2d(np.asarray(new_hi, dtype=float))
    for r, idx in enumerate(indices):
        prev_lo = regions.lo[idx].copy()
        prev_hi = regions.hi[idx].copy()
        lo = np.maximum(prev_lo, new_lo[r])
        hi = np.minimum(prev_hi, new_hi[r])
        empty = lo > hi
        if empty.any():
            new_mid = 0.5 * (new_lo[r] + new_hi[r])
            nearest = np.clip(new_mid, prev_lo, prev_hi)
            lo = np.where(empty, nearest, lo)
            hi = np.where(empty, nearest, hi)
        regions.lo[idx] = lo
        regions.hi[idx] = hi
