"""PPATuner core (the paper's contribution, Algorithm 1)."""

from .calibration import CalibrationEngine, CalibrationStats
from .config import PPATunerConfig
from .decision import apply_decision_rules
from .oracle import CallableOracle, FlowOracle, Oracle, PoolOracle
from .result import IterationRecord, TuningResult
from .selection import select_batch, select_next, select_with_fallback
from .session import EvaluationFailure, TuningSession, drive
from .tuner import PPATuner, Tuner
from .uncertainty import UncertaintyRegions, prediction_rectangle

__all__ = [
    "CalibrationEngine",
    "CalibrationStats",
    "CallableOracle",
    "EvaluationFailure",
    "FlowOracle",
    "IterationRecord",
    "Oracle",
    "PPATuner",
    "PPATunerConfig",
    "PoolOracle",
    "Tuner",
    "TuningResult",
    "TuningSession",
    "UncertaintyRegions",
    "apply_decision_rules",
    "drive",
    "prediction_rectangle",
    "select_batch",
    "select_next",
    "select_with_fallback",
]
