"""PPATuner — the paper's Algorithm 1.

Pool-based Pareto-driven auto-tuning: candidates are target-task parameter
configurations; per iteration the tuner (1) calibrates one transfer GP per
QoR metric on all source data plus the target evaluations so far,
(2) shrinks per-candidate uncertainty hyper-rectangles, (3) drops
δ-dominated candidates and classifies δ-accurate Pareto candidates, and
(4) sends the largest-uncertainty live candidate(s) to the tool.

The loop itself lives in :class:`~repro.core.session.TuningSession`, an
ask/tell state machine; :meth:`PPATuner.tune` is its closed-loop driver —
it wires the resilience layer around the oracle, adopts the trace
recorder, and feeds evaluations back until the session completes.  Both
surfaces produce identical results and event streams for the same seed.
With ``config.q > 1`` the driver dispatches each pending batch through
``Oracle.evaluate_batch`` — concurrent under oracles that advertise
``supports_parallel_batch`` (the paper's parallel tool licenses) — and
with ``config.pool_refine_every > 0`` the candidate pool grows mid-run,
which requires an oracle exposing ``extend`` (see
:class:`~repro.core.oracle.CallableOracle` and
:class:`~repro.core.oracle.FlowOracle` with a decoder).

The tuner accepts any object satisfying the
:class:`~repro.core.oracle.Oracle` protocol and, when given a
:class:`~repro.obs.recorder.TraceRecorder`, emits the full
:mod:`repro.obs` event stream (run/iteration brackets, calibration,
decision, selection, and — via the oracle — every tool evaluation), from
which the run replays exactly.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..obs.recorder import NULL_RECORDER
from .calibration import CalibrationEngine
from .config import PPATunerConfig
from .result import TuningResult
from .session import TuningSession, _finalize_mask, drive
from .uncertainty import UncertaintyRegions

if TYPE_CHECKING:  # pragma: no cover
    from ..gp.multisource import MultiSourceTransferGP
    from ..gp.transfer_gp import TransferGP
    from .oracle import Oracle


def __getattr__(name: str):
    # ``repro.core.tuner.Oracle`` used to be a concrete union alias
    # (PoolOracle | FlowOracle); the contract now lives in
    # ``repro.core.oracle.Oracle`` as a structural protocol.
    if name == "Oracle":
        warnings.warn(
            "importing Oracle from repro.core.tuner is deprecated; "
            "use repro.core.oracle.Oracle (a typing.Protocol)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .oracle import Oracle

        return Oracle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@runtime_checkable
class Tuner(Protocol):
    """Structural contract every tuner satisfies (the tuner-side twin of
    :class:`~repro.core.oracle.Oracle`).

    A tuner is anything with a ``name`` and a ``tune`` accepting the
    pool, an oracle, and the unified keyword surface — ``PPATuner``, the
    :class:`~repro.baselines.PoolTuner` baselines,
    :class:`~repro.service.RemoteTuner`, or any duck-typed object.
    ``isinstance(obj, Tuner)`` checks the attributes exist (signatures
    are the conformance tests' job, as with ``Oracle``).
    """

    #: Human-readable method name (reports, registries).
    name: str

    def tune(
        self,
        X_pool: np.ndarray,
        oracle: "Oracle",
        *,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
        init_indices: np.ndarray | None = None,
    ) -> TuningResult:
        """Run the tuner over the candidate pool."""
        ...  # pragma: no cover - protocol stub


class PPATuner:
    """Pareto-driven tool-parameter auto-tuner with GP transfer learning.

    Example:
        >>> tuner = PPATuner(PPATunerConfig(max_iterations=100))
        >>> result = tuner.tune(X_pool, oracle, X_src, Y_src)  # doctest: +SKIP
    """

    #: Method name under the :class:`Tuner` protocol (matches the
    #: paper-table column and the method registry).
    name = "PPATuner"

    def __init__(
        self,
        config: PPATunerConfig | None = None,
        recorder=None,
    ) -> None:
        """Create the tuner.

        Args:
            config: Loop hyperparameters (defaults are the repo's
                reference settings; see :class:`PPATunerConfig`).
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`;
                defaults to the allocation-free null recorder.
        """
        self.config = config or PPATunerConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.models_: list[TransferGP | MultiSourceTransferGP] = []
        self.calibration_: CalibrationEngine | None = None
        self.session_: TuningSession | None = None

    def tune(
        self,
        X_pool: np.ndarray,
        oracle: "Oracle",
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        init_indices: np.ndarray | None = None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> TuningResult:
        """Run Algorithm 1 over the candidate pool.

        Args:
            X_pool: ``(n, d)`` raw feature matrix of the target-task
                candidate configurations.
            oracle: Evaluation oracle over the same pool (row order must
                match); anything satisfying the
                :class:`~repro.core.oracle.Oracle` protocol.
            X_source: ``(N, d)`` source-task features (the historical
                dataset ``D^S``); omit to tune without transfer.
            Y_source: ``(N, m)`` source-task golden objectives.
            init_indices: Explicit initial target evaluations ``D^T``;
                sampled randomly per the config when omitted.
            sources: Multiple historical tasks as ``(X_k, Y_k)`` pairs —
                an extension beyond the paper's single source; when more
                than one is given, the surrogates are
                :class:`MultiSourceTransferGP` models that learn a
                per-archive similarity.  Mutually exclusive with
                ``X_source``/``Y_source``.

        Returns:
            A :class:`TuningResult`.

        Raises:
            ValueError: On shape mismatches or conflicting source
                arguments.
        """
        rec = self.recorder
        # If the oracle has no recorder of its own, adopt it into this
        # run's trace so tool evaluations land in the same stream.
        adopted = (
            rec
            and hasattr(oracle, "recorder")
            and not getattr(oracle, "recorder")
        )
        original_recorder = getattr(oracle, "recorder", None)
        if adopted:
            oracle.recorder = rec
        try:
            return self._tune(
                X_pool, oracle, X_source, Y_source, init_indices, sources
            )
        finally:
            if adopted:
                # Restore the caller's exact attribute value — it may
                # have been None or another falsy sentinel, which must
                # not be upgraded to NULL_RECORDER behind their back.
                oracle.recorder = original_recorder

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: "Oracle",
        X_source: np.ndarray | None,
        Y_source: np.ndarray | None,
        init_indices: np.ndarray | None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None,
    ) -> TuningResult:
        cfg = self.config
        rec = self.recorder
        X_pool = np.atleast_2d(np.asarray(X_pool, dtype=float))
        if len(X_pool) != oracle.n_candidates:
            raise ValueError("pool and oracle size mismatch")

        # ---- Resilience layer. ----
        # Imported here, not at module top: resilient pulls in the obs
        # package, which imports back into core (replay -> result).
        from ..reliability.resilient import ResilientOracle

        policy = cfg.fault_policy
        if policy is not None and not isinstance(oracle, ResilientOracle):
            oracle = ResilientOracle(
                oracle, policy=policy, seed=cfg.seed,
                recorder=rec if rec else None,
            )

        session = TuningSession(
            cfg,
            X_pool,
            oracle.n_objectives,
            X_source=X_source,
            Y_source=Y_source,
            sources=sources,
            init_indices=init_indices,
            recorder=rec,
        )
        self.session_ = session
        try:
            return drive(session, oracle, policy)
        finally:
            # The fitted surrogates and engine stay inspectable whether
            # or not the drive completed (telemetry reads them).
            self.models_ = session.models
            self.calibration_ = session.engine

    @staticmethod
    def _finalize(
        regions: UncertaintyRegions,
        dropped: np.ndarray,
        pareto: np.ndarray,
        y_obs: np.ndarray,
        sampled: np.ndarray,
        quarantined: np.ndarray,
    ) -> np.ndarray:
        """Final Pareto mask over the pool (verification admission).

        Delegates to the session-layer implementation; kept as a method
        for API continuity.
        """
        return _finalize_mask(
            regions, dropped, pareto, y_obs, sampled, quarantined
        )
