"""PPATuner — the paper's Algorithm 1.

Pool-based Pareto-driven auto-tuning: candidates are target-task parameter
configurations; per iteration the tuner (1) calibrates one transfer GP per
QoR metric on all source data plus the target evaluations so far,
(2) shrinks per-candidate uncertainty hyper-rectangles, (3) drops
δ-dominated candidates and classifies δ-accurate Pareto candidates, and
(4) sends the largest-uncertainty live candidate(s) to the tool.

The tuner accepts any object satisfying the
:class:`~repro.core.oracle.Oracle` protocol and, when given a
:class:`~repro.obs.recorder.TraceRecorder`, emits the full
:mod:`repro.obs` event stream (run/iteration brackets, calibration,
decision, selection, and — via the oracle — every tool evaluation), from
which the run replays exactly.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING

import numpy as np

from ..gp.kernels import make_kernel
from ..gp.multisource import MultiSourceTransferGP
from ..gp.transfer_gp import TransferGP
from ..obs.events import (
    IterationEnd,
    IterationStart,
    PointQuarantined,
    RunEnd,
    RunStart,
)
from ..obs.recorder import NULL_RECORDER
from ..pareto.dominance import pareto_indices as pareto_rows
from ..reliability.errors import CircuitOpenError, PermanentEvaluationError
from .calibration import CalibrationEngine
from .config import PPATunerConfig
from .decision import apply_decision_rules
from .result import IterationRecord, TuningResult
from .selection import select_with_fallback
from .uncertainty import UncertaintyRegions, prediction_rectangle

if TYPE_CHECKING:  # pragma: no cover
    from .oracle import Oracle


def __getattr__(name: str):
    # ``repro.core.tuner.Oracle`` used to be a concrete union alias
    # (PoolOracle | FlowOracle); the contract now lives in
    # ``repro.core.oracle.Oracle`` as a structural protocol.
    if name == "Oracle":
        warnings.warn(
            "importing Oracle from repro.core.tuner is deprecated; "
            "use repro.core.oracle.Oracle (a typing.Protocol)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .oracle import Oracle

        return Oracle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class PPATuner:
    """Pareto-driven tool-parameter auto-tuner with GP transfer learning.

    Example:
        >>> tuner = PPATuner(PPATunerConfig(max_iterations=100))
        >>> result = tuner.tune(X_pool, oracle, X_src, Y_src)  # doctest: +SKIP
    """

    def __init__(
        self,
        config: PPATunerConfig | None = None,
        recorder=None,
    ) -> None:
        """Create the tuner.

        Args:
            config: Loop hyperparameters (defaults are the repo's
                reference settings; see :class:`PPATunerConfig`).
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`;
                defaults to the allocation-free null recorder.
        """
        self.config = config or PPATunerConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.models_: list[TransferGP | MultiSourceTransferGP] = []
        self.calibration_: CalibrationEngine | None = None

    def tune(
        self,
        X_pool: np.ndarray,
        oracle: "Oracle",
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        init_indices: np.ndarray | None = None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> TuningResult:
        """Run Algorithm 1 over the candidate pool.

        Args:
            X_pool: ``(n, d)`` raw feature matrix of the target-task
                candidate configurations.
            oracle: Evaluation oracle over the same pool (row order must
                match); anything satisfying the
                :class:`~repro.core.oracle.Oracle` protocol.
            X_source: ``(N, d)`` source-task features (the historical
                dataset ``D^S``); omit to tune without transfer.
            Y_source: ``(N, m)`` source-task golden objectives.
            init_indices: Explicit initial target evaluations ``D^T``;
                sampled randomly per the config when omitted.
            sources: Multiple historical tasks as ``(X_k, Y_k)`` pairs —
                an extension beyond the paper's single source; when more
                than one is given, the surrogates are
                :class:`MultiSourceTransferGP` models that learn a
                per-archive similarity.  Mutually exclusive with
                ``X_source``/``Y_source``.

        Returns:
            A :class:`TuningResult`.

        Raises:
            ValueError: On shape mismatches or conflicting source
                arguments.
        """
        rec = self.recorder
        # If the oracle has no recorder of its own, adopt it into this
        # run's trace so tool evaluations land in the same stream.
        adopted = (
            rec
            and hasattr(oracle, "recorder")
            and not getattr(oracle, "recorder")
        )
        if adopted:
            oracle.recorder = rec
        try:
            return self._tune(
                X_pool, oracle, X_source, Y_source, init_indices, sources
            )
        finally:
            if adopted:
                oracle.recorder = NULL_RECORDER

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: "Oracle",
        X_source: np.ndarray | None,
        Y_source: np.ndarray | None,
        init_indices: np.ndarray | None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None,
    ) -> TuningResult:
        cfg = self.config
        rec = self.recorder
        run_clock = time.perf_counter()
        rng = np.random.default_rng(cfg.seed)
        X_pool = np.atleast_2d(np.asarray(X_pool, dtype=float))
        n = len(X_pool)
        if n != oracle.n_candidates:
            raise ValueError("pool and oracle size mismatch")
        m = oracle.n_objectives

        # ---- Resilience layer. ----
        # Imported here, not at module top: resilient pulls in the obs
        # package, which imports back into core (replay -> result).
        from ..reliability.resilient import ResilientOracle

        policy = cfg.fault_policy
        if policy is not None and not isinstance(oracle, ResilientOracle):
            oracle = ResilientOracle(
                oracle, policy=policy, seed=cfg.seed,
                recorder=rec if rec else None,
            )
        quarantined = np.zeros(n, dtype=bool)
        n_failed = 0

        if sources is not None and X_source is not None:
            raise ValueError(
                "pass either X_source/Y_source or sources, not both"
            )
        if sources is None:
            sources = (
                [(X_source, Y_source)]
                if X_source is not None and Y_source is not None
                else []
            )
        source_list: list[tuple[np.ndarray, np.ndarray]] = []
        if cfg.transfer:
            for Xs, Ys in sources:
                Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
                Ys = np.atleast_2d(np.asarray(Ys, dtype=float))
                if len(Xs) == 0:
                    continue
                if len(Xs) != len(Ys):
                    raise ValueError("source X/Y misaligned")
                if Ys.shape[1] != m:
                    raise ValueError("source objectives mismatch oracle")
                source_list.append((Xs, Ys))
        use_source = bool(source_list)
        X_source = (
            np.vstack([Xs for Xs, _ in source_list])
            if use_source else np.empty((0, X_pool.shape[1]))
        )
        Y_source = (
            np.vstack([Ys for _, Ys in source_list])
            if use_source else np.empty((0, m))
        )

        # Normalize features jointly to the unit cube (GP lengthscales
        # then live on a common scale).
        stacked = np.vstack([X_pool, X_source])
        lo, hi = stacked.min(axis=0), stacked.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        Xn_pool = (X_pool - lo) / span
        Xn_sources = [
            ((Xs - lo) / span, Ys) for Xs, Ys in source_list
        ]
        Xn_source = (
            (X_source - lo) / span if len(X_source) else X_source
        )
        multi = len(Xn_sources) > 1

        # ---- Initialization (Algorithm 1 lines 1-2). ----
        if init_indices is None:
            n_init = max(cfg.min_init, int(round(n * cfg.init_fraction)))
            n_init = min(n_init, n)
            init_indices = rng.choice(n, size=n_init, replace=False)
        init_indices = np.asarray(init_indices, dtype=int)

        sampled = np.zeros(n, dtype=bool)
        dropped = np.zeros(n, dtype=bool)
        pareto = np.zeros(n, dtype=bool)
        y_obs = np.full((n, m), np.nan)
        regions = UncertaintyRegions.unbounded(n, m)

        def try_evaluate(idx: int, iteration: int = -1) -> bool:
            """Evaluate + record one candidate; quarantine on failure.

            Returns False when the evaluation failed permanently (the
            candidate is then quarantined, or merely skipped when the
            failure was the circuit breaker's systemic fast-fail).
            """
            nonlocal n_failed
            try:
                value = np.asarray(
                    oracle.evaluate(idx), dtype=float
                ).ravel()
            except PermanentEvaluationError as exc:
                n_failed += 1
                if policy is None or policy.on_permanent_failure == "raise":
                    raise
                if isinstance(exc, CircuitOpenError):
                    # Systemic rejection, not the candidate's fault:
                    # skip it this round without quarantining.
                    return False
                quarantined[idx] = True
                dropped[idx] = True
                pareto[idx] = False
                if rec:
                    rec.emit(PointQuarantined(
                        index=idx,
                        iteration=iteration,
                        attempts=exc.attempts,
                        error=type(exc).__name__,
                    ))
                return False
            y_obs[idx] = value
            sampled[idx] = True
            if np.all(np.isfinite(value)):
                regions.collapse(idx, value)
            else:
                # Partial QoR report: pin the observed metrics, keep
                # the missing metrics' accumulated interval open.
                regions.collapse_partial(idx, value)
            return True

        for idx in init_indices:
            try_evaluate(int(idx))

        # Absolute δ from the observed objective ranges (Eq. (11)/(12)).
        seen = np.vstack([Y_source, y_obs[sampled]]) if use_source else (
            y_obs[sampled]
        )
        if seen.size == 0:
            obj_range = np.ones(m)
        else:
            with warnings.catch_warnings():
                # All-NaN columns (every observation of a metric was a
                # partial failure) warn before yielding NaN; the
                # finite-guard below handles them.
                warnings.simplefilter("ignore", RuntimeWarning)
                obj_range = np.nanmax(seen, axis=0) - np.nanmin(
                    seen, axis=0
                )
        obj_range = np.where(
            np.isfinite(obj_range) & (obj_range > 0), obj_range, 1.0
        )
        delta = np.broadcast_to(
            np.asarray(cfg.delta_rel, dtype=float), (m,)
        ) * obj_range

        if rec:
            rec.emit(RunStart(
                n_candidates=n,
                n_objectives=m,
                seed=cfg.seed,
                n_init=len(init_indices),
                n_sources=len(source_list),
                delta=[float(d) for d in delta],
            ))

        if multi:
            self.models_ = [
                MultiSourceTransferGP(
                    kernel=make_kernel(
                        cfg.kernel, X_pool.shape[1], 0.3, 1.0
                    ),
                    # Optimistic prior (lambda ~ 0.67): archives are
                    # presumed relevant until the likelihood says
                    # otherwise; the default a=b=1 starts exactly at
                    # lambda=0, a saddle the optimizer can stall on.
                    a=0.2,
                    b=1.0,
                    n_restarts=max(cfg.n_restarts, 2),
                    seed=cfg.seed + j,
                )
                for j in range(m)
            ]
        else:
            self.models_ = [
                TransferGP(
                    kernel=make_kernel(
                        cfg.kernel, X_pool.shape[1], 0.3, 1.0
                    ),
                    n_restarts=cfg.n_restarts,
                    seed=cfg.seed + j,
                )
                for j in range(m)
            ]

        engine = CalibrationEngine(
            self.models_, cfg, multi=multi, sources=Xn_sources,
            X_source=Xn_source, Y_source=Y_source, recorder=rec,
        )
        engine.register_pool(Xn_pool)
        self.calibration_ = engine

        delta_norm = float(np.linalg.norm(delta))
        history: list[IterationRecord] = []
        stop_reason = "max_iterations"
        new_indices: list[int] = []
        for t in range(cfg.max_iterations):
            undecided = ~dropped & ~pareto
            # The loop runs while anything is undecided, and — per the
            # selection rule (Eq. (13)), which samples Pareto-classified
            # points too — while a classified point's region is still
            # materially larger than δ and unverified by the tool.
            unverified = (
                pareto & ~sampled
                & (regions.diameters() > delta_norm)
                & regions.is_bounded()
            )
            if not undecided.any() and not unverified.any():
                stop_reason = "all_decided"
                break

            if rec:
                rec.emit(IterationStart(
                    iteration=t,
                    n_undecided=int(undecided.sum()),
                    n_pareto=int(pareto.sum()),
                    n_dropped=int(dropped.sum()),
                ))

            # ---- Model calibration (lines 4-6). ----
            # The engine picks the exact path (full refit, on the
            # re-optimization cadence) or the incremental fast path
            # (rank-1 border updates absorbing the new evaluations).
            active = ~dropped & ~sampled
            engine.calibrate(t, Xn_pool, sampled, y_obs, new_indices)
            active_ids = np.nonzero(active)[0]
            mean, std = engine.predict(
                active_ids, include_noise=cfg.noise_in_regions
            )
            rect_lo, rect_hi = prediction_rectangle(mean, std, cfg.tau)
            regions.intersect(active_ids, rect_lo, rect_hi)

            # ---- Decision-making (lines 7-9). ----
            newly_dropped, newly_pareto = apply_decision_rules(
                regions, undecided, pareto, delta,
                pareto_delta=cfg.pareto_delta_scale * delta,
                recorder=rec, iteration=t,
            )
            dropped[newly_dropped] = True
            pareto[newly_pareto] = True

            # ---- Selection (lines 10-11). ----
            # Max-diameter selection with fallback: a permanently
            # failed candidate is quarantined and the rule falls
            # through to the next-largest-diameter live candidate.
            eligible = (~dropped) & (~sampled)
            evaluated_now, failed_now = select_with_fallback(
                regions, eligible, cfg.batch_size,
                lambda i: try_evaluate(i, t),
                recorder=rec, iteration=t,
            )
            new_indices = evaluated_now

            live = ~dropped
            bounded = regions.is_bounded() & live
            max_diam = (
                float(regions.diameters()[bounded].max())
                if bounded.any() else float("nan")
            )
            record = IterationRecord(
                iteration=t,
                n_undecided=int((~dropped & ~pareto).sum()),
                n_pareto=int(pareto.sum()),
                n_dropped=int(dropped.sum()),
                n_evaluations=oracle.n_evaluations,
                max_diameter=max_diam,
                selected=[int(i) for i in evaluated_now],
            )
            history.append(record)
            if rec:
                rec.emit(IterationEnd(
                    iteration=record.iteration,
                    n_undecided=record.n_undecided,
                    n_pareto=record.n_pareto,
                    n_dropped=record.n_dropped,
                    n_evaluations=record.n_evaluations,
                    max_diameter=record.max_diameter,
                    selected=list(record.selected),
                ))
            if not evaluated_now and not failed_now:
                if not (~dropped & ~pareto).any():
                    stop_reason = "all_decided"
                else:
                    # Nothing evaluable remains; classify leftovers
                    # below.  (A failed-only iteration is neither: the
                    # quarantine changed the pool, so loop again.)
                    stop_reason = "pool_exhausted"
                break

        # ---- Finalize: resolve any leftover undecided candidates by
        # their representative values (observed if sampled, else the
        # midpoint of their region). ----
        final_pareto = self._finalize(
            regions, dropped, pareto, y_obs, sampled, quarantined
        )
        pareto_idx = np.nonzero(final_pareto)[0]
        # The paper's "Runs" counts tuning-loop tool invocations; the final
        # verification of predicted Pareto configurations is reported
        # separately, so snapshot the count first.
        loop_runs = oracle.n_evaluations
        kept: list[int] = []
        rows: list[np.ndarray] = []
        for i in pareto_idx:
            try:
                rows.append(np.asarray(
                    oracle.evaluate(int(i)), dtype=float
                ).ravel())
                kept.append(int(i))
            except PermanentEvaluationError as exc:
                n_failed += 1
                if policy is None or policy.on_permanent_failure == "raise":
                    raise
                # Either way the point cannot be verified and leaves
                # the reported set; a breaker fast-fail is systemic,
                # so only a genuine failure is quarantined.
                if not isinstance(exc, CircuitOpenError):
                    quarantined[i] = True
                    if rec:
                        rec.emit(PointQuarantined(
                            index=int(i),
                            iteration=-1,
                            attempts=exc.attempts,
                            error=type(exc).__name__,
                        ))
        pareto_idx = np.asarray(kept, dtype=int)
        pareto_pts = (
            np.vstack(rows) if rows else np.empty((0, m))
        )

        evaluated = np.nonzero(sampled)[0]
        quarantined_idx = np.nonzero(quarantined)[0]
        if rec:
            rec.emit(RunEnd(
                stop_reason=stop_reason,
                n_iterations=len(history),
                n_evaluations=loop_runs,
                seconds=time.perf_counter() - run_clock,
                pareto_indices=[int(i) for i in pareto_idx],
                evaluated_indices=[int(i) for i in evaluated],
                quarantined_indices=[int(i) for i in quarantined_idx],
                n_failed_evaluations=n_failed,
            ))
            rec.flush()

        return TuningResult(
            pareto_indices=pareto_idx,
            pareto_points=pareto_pts,
            n_evaluations=loop_runs,
            n_iterations=len(history),
            history=history,
            evaluated_indices=evaluated,
            stop_reason=stop_reason,
            quarantined_indices=quarantined_idx,
            n_failed_evaluations=n_failed,
        )

    @staticmethod
    def _finalize(
        regions: UncertaintyRegions,
        dropped: np.ndarray,
        pareto: np.ndarray,
        y_obs: np.ndarray,
        sampled: np.ndarray,
        quarantined: np.ndarray,
    ) -> np.ndarray:
        """Final Pareto mask over the pool.

        Classified-Pareto candidates are kept; undecided survivors are
        admitted if their representative point is non-dominated within
        the live set (handles the T_max-hit case).  Quarantined
        candidates never enter the reported set — their QoR cannot be
        verified by the tool.
        """
        live = ~dropped
        # Metric-wise: use the observation where one exists (a partial
        # report observes only some metrics), else the region midpoint.
        observed = sampled[:, None] & np.isfinite(y_obs)
        with np.errstate(invalid="ignore"):
            # Unbounded rectangles yield inf-inf midpoints; those rows
            # are filtered by is_bounded() below, never compared.
            rep = np.where(observed, y_obs, 0.5 * (regions.lo + regions.hi))
        final = pareto.copy()
        live_ids = np.nonzero(live)[0]
        live_ids = live_ids[regions.is_bounded()[live_ids]]
        if len(live_ids):
            nd_rows = pareto_rows(rep[live_ids])
            final[live_ids[nd_rows]] = True
        # Golden values of every tool run are in hand; the observed
        # non-dominated points always belong in the reported set (a
        # δ-dropped point can still be truly Pareto-optimal — δ-accuracy
        # bounds how much better it can be, not whether it exists).
        # Partially-observed rows are excluded: NaN poisons dominance.
        full_rows = sampled & np.all(np.isfinite(y_obs), axis=1)
        sampled_ids = np.nonzero(full_rows)[0]
        if len(sampled_ids):
            nd_rows = pareto_rows(y_obs[sampled_ids])
            final[sampled_ids[nd_rows]] = True
        final[quarantined] = False
        return final
