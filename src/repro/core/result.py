"""Tuning results shared by PPATuner and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class IterationRecord:
    """One iteration's bookkeeping (feeds the Figure 2 visualizations).

    Attributes:
        iteration: 0-based iteration number.
        n_undecided: Undecided candidates after decision-making.
        n_pareto: Candidates classified Pareto-optimal so far.
        n_dropped: Candidates dropped so far.
        n_evaluations: Cumulative tool runs.
        max_diameter: Largest uncertainty-region diameter among live
            candidates (NaN if none are bounded yet).
        selected: Candidate indices evaluated this iteration.
    """

    iteration: int
    n_undecided: int
    n_pareto: int
    n_dropped: int
    n_evaluations: int
    max_diameter: float
    selected: list[int] = field(default_factory=list)


@dataclass
class TuningResult:
    """Outcome of one tuning run.

    Attributes:
        pareto_indices: Pool indices predicted Pareto-optimal.
        pareto_points: Golden objective vectors of those indices
            (``(k, m)``) — evaluated through the tool for the final
            verification pass, as the paper does.
        n_evaluations: Total tool runs consumed (the paper's 'Runs').
        n_iterations: Loop iterations executed.
        history: Per-iteration records (empty for baselines that do not
            track it).
        evaluated_indices: Every pool index the tuner evaluated.
        stop_reason: Why the loop ended (``"all_decided"``,
            ``"max_iterations"`` or ``"pool_exhausted"``).
        quarantined_indices: Pool indices permanently removed from the
            loop after unrecoverable evaluation failure (empty on
            healthy runs; see :mod:`repro.reliability`).
        n_failed_evaluations: Permanent evaluation failures over the
            run (quarantines plus circuit-breaker fast-fails).
    """

    pareto_indices: np.ndarray
    pareto_points: np.ndarray
    n_evaluations: int
    n_iterations: int
    history: list[IterationRecord] = field(default_factory=list)
    evaluated_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )
    stop_reason: str = ""
    quarantined_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )
    n_failed_evaluations: int = 0

    def __post_init__(self) -> None:
        self.pareto_indices = np.asarray(self.pareto_indices, dtype=int)
        self.pareto_points = np.atleast_2d(
            np.asarray(self.pareto_points, dtype=float)
        )
        if len(self.pareto_indices) != len(self.pareto_points):
            raise ValueError("pareto indices/points misaligned")
        self.quarantined_indices = np.asarray(
            self.quarantined_indices, dtype=int
        )
