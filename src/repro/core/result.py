"""Tuning results shared by PPATuner and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class IterationRecord:
    """One iteration's bookkeeping (feeds the Figure 2 visualizations).

    Attributes:
        iteration: 0-based iteration number.
        n_undecided: Undecided candidates after decision-making.
        n_pareto: Candidates classified Pareto-optimal so far.
        n_dropped: Candidates dropped so far.
        n_evaluations: Cumulative tool runs.
        max_diameter: Largest uncertainty-region diameter among live
            candidates (NaN if none are bounded yet).
        selected: Candidate indices evaluated this iteration.
    """

    iteration: int
    n_undecided: int
    n_pareto: int
    n_dropped: int
    n_evaluations: int
    max_diameter: float
    selected: list[int] = field(default_factory=list)

    def to_json(self) -> dict:
        """Flat JSON dict (memo entries and session snapshots)."""
        return {
            "iteration": int(self.iteration),
            "n_undecided": int(self.n_undecided),
            "n_pareto": int(self.n_pareto),
            "n_dropped": int(self.n_dropped),
            "n_evaluations": int(self.n_evaluations),
            "max_diameter": float(self.max_diameter),
            "selected": [int(i) for i in self.selected],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "IterationRecord":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            iteration=payload["iteration"],
            n_undecided=payload["n_undecided"],
            n_pareto=payload["n_pareto"],
            n_dropped=payload["n_dropped"],
            n_evaluations=payload["n_evaluations"],
            max_diameter=payload["max_diameter"],
            selected=list(payload["selected"]),
        )


@dataclass
class TuningResult:
    """Outcome of one tuning run.

    Attributes:
        pareto_indices: Pool indices predicted Pareto-optimal.
        pareto_points: Golden objective vectors of those indices
            (``(k, m)``) — evaluated through the tool for the final
            verification pass, as the paper does.
        n_evaluations: Total tool runs consumed (the paper's 'Runs').
        n_iterations: Loop iterations executed.
        history: Per-iteration records (empty for baselines that do not
            track it).
        evaluated_indices: Every pool index the tuner evaluated.
        stop_reason: Why the loop ended (``"all_decided"``,
            ``"max_iterations"`` or ``"pool_exhausted"``).
        quarantined_indices: Pool indices permanently removed from the
            loop after unrecoverable evaluation failure (empty on
            healthy runs; see :mod:`repro.reliability`).
        n_failed_evaluations: Permanent evaluation failures over the
            run (quarantines plus circuit-breaker fast-fails).
    """

    pareto_indices: np.ndarray
    pareto_points: np.ndarray
    n_evaluations: int
    n_iterations: int
    history: list[IterationRecord] = field(default_factory=list)
    evaluated_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )
    stop_reason: str = ""
    quarantined_indices: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=int)
    )
    n_failed_evaluations: int = 0

    def __post_init__(self) -> None:
        self.pareto_indices = np.asarray(self.pareto_indices, dtype=int)
        self.pareto_points = np.atleast_2d(
            np.asarray(self.pareto_points, dtype=float)
        )
        if len(self.pareto_indices) != len(self.pareto_points):
            raise ValueError("pareto indices/points misaligned")
        self.quarantined_indices = np.asarray(
            self.quarantined_indices, dtype=int
        )

    def to_json(self) -> dict:
        """Fully JSON-serializable dict (lossless modulo float repr).

        Arrays become nested lists; :meth:`from_json` restores exact
        values (Python floats round-trip through JSON bit-exactly).
        """
        return {
            "pareto_indices": [int(i) for i in self.pareto_indices],
            "pareto_points": [
                [float(v) for v in row] for row in self.pareto_points
            ],
            "n_objectives": int(self.pareto_points.shape[1]),
            "n_evaluations": int(self.n_evaluations),
            "n_iterations": int(self.n_iterations),
            "history": [h.to_json() for h in self.history],
            "evaluated_indices": [
                int(i) for i in self.evaluated_indices
            ],
            "stop_reason": self.stop_reason,
            "quarantined_indices": [
                int(i) for i in self.quarantined_indices
            ],
            "n_failed_evaluations": int(self.n_failed_evaluations),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TuningResult":
        """Rebuild from :meth:`to_json` output."""
        m = int(payload.get("n_objectives", 0))
        points = np.asarray(payload["pareto_points"], dtype=float)
        if points.size == 0:
            points = np.empty((0, m))
        return cls(
            pareto_indices=np.asarray(
                payload["pareto_indices"], dtype=int
            ),
            pareto_points=points,
            n_evaluations=int(payload["n_evaluations"]),
            n_iterations=int(payload["n_iterations"]),
            history=[
                IterationRecord.from_json(h)
                for h in payload.get("history", [])
            ],
            evaluated_indices=np.asarray(
                payload.get("evaluated_indices", []), dtype=int
            ),
            stop_reason=payload.get("stop_reason", ""),
            quarantined_indices=np.asarray(
                payload.get("quarantined_indices", []), dtype=int
            ),
            n_failed_evaluations=int(
                payload.get("n_failed_evaluations", 0)
            ),
        )
