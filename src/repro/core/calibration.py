"""Incremental GP calibration engine for the tuning loop.

Algorithm 1 calibrates one surrogate per QoR metric every iteration on
data that only grows by the freshly evaluated target points.  The engine
decides, per iteration, between two numerically equivalent paths:

- **Exact path** — a full ``fit`` per metric (kernel re-evaluation +
  refactorization), used for the initial calibration, on every
  hyperparameter re-optimization cadence tick (``reopt_every``,
  warm-started from the previous optimum inside the models), and when
  :class:`PPATunerConfig.incremental` is off.
- **Fast path** — ``update`` per metric: the new evaluations extend the
  cached Cholesky factor via rank-1 border updates and the cached
  pool cross-covariance/whitened blocks by the new columns only (see
  :mod:`repro.gp.incremental`).  If an update's Schur complement is not
  positive definite the model falls back to an exact refactorization on
  its own; the engine records the event in :attr:`CalibrationStats`.

On either path, when :class:`PPATunerConfig.shared_factor` is on and
every model reports the same covariance signature (same kernel family
and hyperparameters — true until re-optimization diverges them), the
engine factors the shared covariance **once** on a lead model and the
remaining metrics adopt it, redoing only their per-metric RHS solves;
the pool prediction caches are likewise built once and aliased.  This
is bit-identical to independent per-model fits because it deduplicates
computations that would produce the same bits.

Predictions over the candidate pool always go through the models'
``predict_pool`` so both paths share one code path (equivalence-tested
in ``tests/test_calibration_equivalence.py`` and
``tests/test_fastpath_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..gp.incremental import predict_pool_multi
from ..obs.events import CalibrationDone
from ..obs.recorder import NULL_RECORDER
from .config import PPATunerConfig


@dataclass
class CalibrationStats:
    """Counters of the engine's calibration activity.

    Attributes:
        n_full_fits: Per-model exact ``fit`` calls (shared-factor
            adoptions count too — the posterior refresh happened).
        n_incremental: Per-model fast-path ``update`` calls (including
            shared-factor adoptions).
        n_fallbacks: Updates that fell back to an exact refactorization
            (jitter escalation).
        n_reopts: Per-model hyperparameter re-optimizations.
        n_shared_fits: Full fits served by adopting the lead model's
            factorization instead of refactorizing.
        n_shared_updates: Incremental updates served by adopting the
            lead model's border update.
    """

    n_full_fits: int = 0
    n_incremental: int = 0
    n_fallbacks: int = 0
    n_reopts: int = 0
    n_shared_fits: int = 0
    n_shared_updates: int = 0


class CalibrationEngine:
    """Per-iteration surrogate calibration with an incremental fast path.

    Example:
        >>> engine = CalibrationEngine(models, cfg, multi=False,
        ...                            sources=[], X_source=Xs,
        ...                            Y_source=Ys)          # doctest: +SKIP
        >>> engine.register_pool(Xn_pool)                    # doctest: +SKIP
        >>> engine.calibrate(t, Xn_pool, sampled, y_obs, new) # doctest: +SKIP
        >>> mean, std = engine.predict(active_ids)            # doctest: +SKIP
    """

    def __init__(
        self,
        models: list,
        config: PPATunerConfig,
        multi: bool,
        sources: list[tuple[np.ndarray, np.ndarray]],
        X_source: np.ndarray,
        Y_source: np.ndarray,
        recorder=None,
    ) -> None:
        """Create the engine.

        Args:
            models: One fitted-or-fresh GP model per QoR metric.
            config: Loop configuration (cadence and engine switches).
            multi: Whether the models are multi-source transfer GPs.
            sources: Normalized ``(X_k, Y_k)`` archives (multi mode).
            X_source: Stacked normalized source features (two-task mode).
            Y_source: Stacked source objectives (two-task mode).
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`
                fed one ``CalibrationDone`` per :meth:`calibrate` call.
        """
        self.models = models
        self.config = config
        self.multi = multi
        self.sources = sources
        self.X_source = X_source
        self.Y_source = Y_source
        self.stats = CalibrationStats()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._fitted = False
        self._shared_active = False
        # Whether every model currently holds the *same* training rows.
        # Partial QoR reports train each metric on its own observed
        # subset; sharing a factor then would pair one metric's alpha
        # with another metric's covariance.  A non-partial full fit
        # re-establishes equality.
        self._same_rows = False

    def register_pool(self, X_pool: np.ndarray) -> None:
        """Attach the fixed candidate pool to every model.

        The config's ``pool_block``/``float32_pool`` switches are
        threaded through so large pools build their prediction caches
        in cache-sized blocks (optionally stored float32).
        """
        cfg = self.config
        dtype = np.float32 if cfg.float32_pool else None
        for model in self.models:
            model.register_pool(
                X_pool, block=cfg.pool_block, dtype=dtype
            )

    def extend_pool(self, X_new: np.ndarray) -> None:
        """Append refined candidates to every model's pool (append path).

        Adaptive pool refinement grows the candidate table mid-run; the
        prediction caches are extended by the new rows only — never
        rebuilt (see :meth:`~repro.gp.incremental.IncrementalGPMixin.extend_pool`).
        Under an active shared factor the appended cache blocks are
        computed once on the lead model and adopted by the followers
        (identical signatures produce identical blocks).
        """
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        if X_new.size == 0:
            return
        if self._shared_active and self._sharing_possible():
            lead = self.models[0]
            lead.extend_pool(X_new)
            for model in self.models[1:]:
                model.extend_pool(X_new, cache=False)
                model._pool_K = lead._pool_K
                model._pool_V = lead._pool_V
        else:
            for model in self.models:
                model.extend_pool(X_new)

    def _sharing_possible(self) -> bool:
        """Whether one Cholesky factorization can serve every model.

        True when the config allows sharing and every model reports the
        same covariance signature — same kernel family and
        hyperparameters, same noise structure — so fitting them on the
        same stacked inputs builds the *same* covariance matrix.
        Hyperparameter re-optimization diverges the signatures (each
        metric's likelihood pulls differently), after which this
        returns False until they coincide again.
        """
        if not self.config.shared_factor or len(self.models) < 2:
            return False
        sigs = [m.covariance_signature() for m in self.models]
        return sigs[0] is not None and all(
            s == sigs[0] for s in sigs[1:]
        )

    def _stacked_y(
        self, j: int, y_obs: np.ndarray, sampled: np.ndarray
    ) -> np.ndarray:
        """The stacked sources-then-target y a metric-``j`` fit sees."""
        if self.multi:
            parts = [Ys[:, j] for _, Ys in self.sources if len(Ys)]
        else:
            parts = (
                [self.Y_source[:, j]] if len(self.X_source) else []
            )
        parts = parts + [y_obs[sampled, j]]
        return np.concatenate(
            [np.asarray(p, dtype=float).ravel() for p in parts]
        )

    def calibrate(
        self,
        t: int,
        X_pool: np.ndarray,
        sampled: np.ndarray,
        y_obs: np.ndarray,
        new_indices: list[int],
    ) -> None:
        """Bring every surrogate up to date with the evaluated data.

        Args:
            t: Iteration counter (drives the re-optimization cadence).
            X_pool: ``(n, d)`` normalized candidate features.
            sampled: Mask of evaluated candidates.
            y_obs: ``(n, m)`` observed objectives (NaN where unsampled).
            new_indices: Pool indices evaluated since the previous
                :meth:`calibrate` call (the fast path absorbs exactly
                these).
        """
        cfg = self.config
        cadence = cfg.effective_reopt_every
        reopt = cadence > 0 and (t % cadence) == 0
        fast = (
            cfg.incremental
            and self._fitted
            and not reopt
            and all(m.is_fitted for m in self.models)
        )
        recorder = self.recorder
        start = time.perf_counter() if recorder else 0.0
        fallbacks_before = self.stats.n_fallbacks
        if fast:
            if not new_indices:
                # No new evidence; the posterior is current.
                if recorder:
                    recorder.emit(CalibrationDone(
                        iteration=t,
                        path="noop",
                        n_models=len(self.models),
                        n_new=0,
                        n_fallbacks=0,
                        reopt=False,
                        seconds=time.perf_counter() - start,
                    ))
                return
            idx = np.asarray(new_indices, dtype=int)
            X_new = X_pool[idx]
            partial = bool(np.isnan(y_obs[idx]).any())
            if partial:
                self._same_rows = False
            shared = (
                not partial
                and self._same_rows
                and self._sharing_possible()
            )
            if shared:
                # One border update on the lead model; followers adopt
                # its extended factor and pool caches and redo only the
                # per-metric alpha solve (bit-identical — identical
                # signatures mean identical matrices).
                lead = self.models[0]
                lead.update(X_new, y_obs[idx, 0])
                self.stats.n_incremental += 1
                if lead.last_update_fallback:
                    # Jitter escalation: the border update is invalid
                    # for every metric, so each follower runs its own
                    # exact (per-GP) refactorization.
                    self.stats.n_fallbacks += 1
                    for j, model in enumerate(self.models[1:], 1):
                        model.update(X_new, y_obs[idx, j])
                        self.stats.n_incremental += 1
                        if model.last_update_fallback:
                            self.stats.n_fallbacks += 1
                else:
                    for j, model in enumerate(self.models[1:], 1):
                        model.adopt_update(lead, X_new, y_obs[idx, j])
                        self.stats.n_incremental += 1
                        self.stats.n_shared_updates += 1
                self._shared_active = True
            else:
                self._shared_active = False
                for j, model in enumerate(self.models):
                    if partial:
                        # Partial QoR reports: absorb only the rows
                        # this metric was actually observed on.
                        keep = np.isfinite(y_obs[idx, j])
                        if not keep.any():
                            continue
                        model.update(X_new[keep], y_obs[idx[keep], j])
                    else:
                        model.update(X_new, y_obs[idx, j])
                    self.stats.n_incremental += 1
                    if model.last_update_fallback:
                        self.stats.n_fallbacks += 1
            if recorder:
                recorder.emit(CalibrationDone(
                    iteration=t,
                    path="incremental",
                    n_models=len(self.models),
                    n_new=len(idx),
                    n_fallbacks=self.stats.n_fallbacks - fallbacks_before,
                    reopt=False,
                    seconds=time.perf_counter() - start,
                ))
            return

        Xt = X_pool[sampled]
        partial = bool(np.isnan(y_obs[sampled]).any())
        # Re-optimization diverges the hyperparameters per metric, and
        # partial observations give each metric different training rows
        # — sharing applies only to plain same-structure refits.
        self._same_rows = not partial
        shared = not reopt and not partial and self._sharing_possible()
        if shared:
            lead = self.models[0]
            lead.optimize = False
            if self.multi:
                src_0 = [(Xs, Ys[:, 0]) for Xs, Ys in self.sources]
            else:
                src_0 = (
                    [(self.X_source, self.Y_source[:, 0])]
                    if len(self.X_source) else []
                )
            lead.fit(
                sources=src_0, X_target=Xt, y_target=y_obs[sampled, 0],
            )
            self.stats.n_full_fits += 1
            for j, model in enumerate(self.models[1:], 1):
                model.optimize = False
                model.adopt_fit(
                    lead, self._stacked_y(j, y_obs, sampled)
                )
                self.stats.n_full_fits += 1
                self.stats.n_shared_fits += 1
            self._shared_active = True
        else:
            self._shared_active = False
            for j, model in enumerate(self.models):
                model.optimize = reopt
                # Both model kinds share the ``sources`` fit keyword;
                # the two-task model stacks the pairs into one source
                # task.
                if self.multi:
                    src_j = [(Xs, Ys[:, j]) for Xs, Ys in self.sources]
                else:
                    src_j = (
                        [(self.X_source, self.Y_source[:, j])]
                        if len(self.X_source) else []
                    )
                if partial:
                    mask = sampled & np.isfinite(y_obs[:, j])
                    model.fit(
                        sources=src_j, X_target=X_pool[mask],
                        y_target=y_obs[mask, j],
                    )
                else:
                    model.fit(
                        sources=src_j, X_target=Xt,
                        y_target=y_obs[sampled, j],
                    )
                self.stats.n_full_fits += 1
                if reopt:
                    self.stats.n_reopts += 1
        self._fitted = True
        if recorder:
            recorder.emit(CalibrationDone(
                iteration=t,
                path="full",
                n_models=len(self.models),
                n_new=len(new_indices),
                n_fallbacks=0,
                reopt=reopt,
                seconds=time.perf_counter() - start,
            ))

    def predict(
        self, indices: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std per metric at registered pool ``indices``.

        Args:
            indices: Integer pool indices (or boolean mask).
            include_noise: Add observation noise to the variances.

        Returns:
            ``(mean, std)`` arrays of shape ``(len(indices), m)``.
        """
        idx = np.asarray(indices)
        if idx.dtype == bool:
            idx = np.nonzero(idx)[0]
        m = len(self.models)
        if self._shared_active and m > 1:
            # Sharing is live: the pool caches are identical across the
            # models, so materialize the lead's once and alias it.
            results = predict_pool_multi(
                self.models, idx, include_noise=include_noise
            )
        else:
            results = [
                model.predict_pool(idx, include_noise=include_noise)
                for model in self.models
            ]
        mean = np.empty((len(idx), m))
        std = np.empty_like(mean)
        for j, (mu, var) in enumerate(results):
            mean[:, j] = mu
            std[:, j] = np.sqrt(var)
        return mean, std


__all__ = ["CalibrationEngine", "CalibrationStats"]
