"""Evaluation oracles: how tuners obtain golden QoR values.

All tuners in this repository are *pool-based*, like the paper's
experiments: candidates are the rows of an offline benchmark table, and
"running the PD tool" on candidate ``i`` reveals its golden QoR vector.
:class:`PoolOracle` serves precomputed tables (the offline benchmarks);
:class:`FlowOracle` invokes the live simulated tool, for use outside the
benchmark protocol (e.g. the examples).

The stable contract both satisfy — and the one :class:`PPATuner
<repro.core.tuner.PPATuner>` and every baseline are typed against — is
the :class:`Oracle` protocol.  Third-party oracles (a real EDA tool, an
RPC service) only need to implement it; no inheritance and no
``isinstance`` checks against concrete classes anywhere in the loop.
Because the contract is structural, oracles compose by decoration:
:class:`~repro.reliability.ResilientOracle` adds retry/timeout/breaker
behavior and :class:`~repro.reliability.FaultInjectingOracle` injects
seeded chaos, and both are again valid oracles.

Every oracle counts evaluations — the paper's cost metric ("Runs").
Re-evaluating an index is served from cache and not recounted.  Both
built-in oracles also emit a :class:`~repro.obs.events.ToolEvaluation`
trace event per ``evaluate`` call (latency, cache hit, observed vector)
when given a :class:`~repro.obs.recorder.TraceRecorder`; the default
null recorder makes the disabled path one truthiness check.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

import numpy as np

from ..obs.events import ToolEvaluation
from ..obs.recorder import NULL_RECORDER
from ..pdtool.flow import PDFlow
from ..pdtool.params import ToolParameters
from ..space.space import Configuration

__all__ = ["FlowOracle", "Oracle", "PoolOracle"]


@runtime_checkable
class Oracle(Protocol):
    """The evaluation contract of the tuning loop.

    Implementations map a fixed candidate pool (by index) to golden
    objective vectors, count distinct tool runs, and can be reset for a
    fresh tuning run.
    """

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        ...

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        ...

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far (the paper's 'Runs')."""
        ...

    def evaluate(self, index: int) -> np.ndarray:
        """Golden QoR vector of pool candidate ``index``."""
        ...

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Row-per-index golden QoR matrix, in ``indices`` order."""
        ...

    def reset(self) -> None:
        """Forget the evaluation count (fresh tuning run)."""
        ...


class PoolOracle:
    """Oracle over a precomputed objective table.

    Attributes:
        Y: ``(n, m)`` golden objective matrix (minimization).
        recorder: Trace recorder fed one ``ToolEvaluation`` per call.
    """

    def __init__(self, Y: np.ndarray, recorder=None) -> None:
        """Wrap the golden table ``Y``.

        Args:
            Y: ``(n, m)`` objective matrix.
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`.
        """
        self.Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if self.Y.size == 0:
            raise ValueError("empty objective table")
        self._evaluated: set[int] = set()
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return self.Y.shape[0]

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return self.Y.shape[1]

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far (the paper's 'Runs')."""
        return len(self._evaluated)

    def evaluate(self, index: int) -> np.ndarray:
        """Golden QoR vector of pool candidate ``index``.

        Raises:
            IndexError: If ``index`` is out of range.
        """
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        index = int(index)
        if self.recorder:
            start = time.perf_counter()
            cached = index in self._evaluated
            self._evaluated.add(index)
            value = self.Y[index].copy()
            self.recorder.emit(ToolEvaluation(
                index=index,
                seconds=time.perf_counter() - start,
                cached=cached,
                oracle="pool",
                values=[float(v) for v in value],
            ))
            return value
        self._evaluated.add(index)
        return self.Y[index].copy()

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order."""
        return np.vstack([self.evaluate(int(i)) for i in indices])

    def reset(self) -> None:
        """Forget the evaluation count (fresh tuning run)."""
        self._evaluated.clear()


class FlowOracle:
    """Oracle that invokes the simulated PD flow on demand.

    Attributes:
        flow: The tool instance.
        configs: Pool of tool configurations, by index.
        objective_names: QoR metrics to extract from each report.
        recorder: Trace recorder fed one ``ToolEvaluation`` per call.
    """

    def __init__(
        self,
        flow: PDFlow,
        configs: list[ToolParameters] | list[Configuration],
        objective_names: tuple[str, ...] = ("power", "delay"),
        recorder=None,
    ) -> None:
        """Create the oracle.

        Args:
            flow: Simulated PD tool.
            configs: Candidate configurations (``ToolParameters`` or
                plain dicts of tool-parameter fields).
            objective_names: Report fields to minimize.
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`.
        """
        if not configs:
            raise ValueError("empty configuration pool")
        self.flow = flow
        self.configs = [
            c if isinstance(c, ToolParameters)
            else ToolParameters.from_dict(dict(c))
            for c in configs
        ]
        self.objective_names = tuple(objective_names)
        self._cache: dict[int, np.ndarray] = {}
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return len(self.configs)

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return len(self.objective_names)

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far."""
        return len(self._cache)

    def evaluate(self, index: int) -> np.ndarray:
        """Run the flow for candidate ``index`` (cached)."""
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        index = int(index)
        start = time.perf_counter()
        cached = index in self._cache
        if not cached:
            report = self.flow.run(self.configs[index])
            self._cache[index] = np.array(
                report.objectives(self.objective_names)
            )
        value = self._cache[index].copy()
        if self.recorder:
            self.recorder.emit(ToolEvaluation(
                index=index,
                seconds=time.perf_counter() - start,
                cached=cached,
                oracle="flow",
                values=[float(v) for v in value],
            ))
        return value

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order."""
        return np.vstack([self.evaluate(int(i)) for i in indices])

    def reset(self) -> None:
        """Drop the run cache and evaluation count (fresh tuning run).

        Subsequent evaluations invoke the flow again — the simulated
        tool is deterministic, but a reset run pays its runtime anew.
        """
        self._cache.clear()
