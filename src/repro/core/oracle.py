"""Evaluation oracles: how tuners obtain golden QoR values.

All tuners in this repository are *pool-based*, like the paper's
experiments: candidates are the rows of an offline benchmark table, and
"running the PD tool" on candidate ``i`` reveals its golden QoR vector.
:class:`PoolOracle` serves precomputed tables (the offline benchmarks);
:class:`FlowOracle` invokes the live simulated tool, for use outside the
benchmark protocol (e.g. the examples).

Every oracle counts evaluations — the paper's cost metric ("Runs").
Re-evaluating an index is served from cache and not recounted.
"""

from __future__ import annotations

import numpy as np

from ..pdtool.flow import PDFlow
from ..pdtool.params import ToolParameters
from ..space.space import Configuration


class PoolOracle:
    """Oracle over a precomputed objective table.

    Attributes:
        Y: ``(n, m)`` golden objective matrix (minimization).
    """

    def __init__(self, Y: np.ndarray) -> None:
        """Wrap the golden table ``Y``."""
        self.Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if self.Y.size == 0:
            raise ValueError("empty objective table")
        self._evaluated: set[int] = set()

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return self.Y.shape[0]

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return self.Y.shape[1]

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far (the paper's 'Runs')."""
        return len(self._evaluated)

    def evaluate(self, index: int) -> np.ndarray:
        """Golden QoR vector of pool candidate ``index``.

        Raises:
            IndexError: If ``index`` is out of range.
        """
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        self._evaluated.add(int(index))
        return self.Y[index].copy()

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`."""
        return np.vstack([self.evaluate(int(i)) for i in indices])

    def reset(self) -> None:
        """Forget the evaluation count (fresh tuning run)."""
        self._evaluated.clear()


class FlowOracle:
    """Oracle that invokes the simulated PD flow on demand.

    Attributes:
        flow: The tool instance.
        configs: Pool of tool configurations, by index.
        objective_names: QoR metrics to extract from each report.
    """

    def __init__(
        self,
        flow: PDFlow,
        configs: list[ToolParameters] | list[Configuration],
        objective_names: tuple[str, ...] = ("power", "delay"),
    ) -> None:
        """Create the oracle.

        Args:
            flow: Simulated PD tool.
            configs: Candidate configurations (``ToolParameters`` or
                plain dicts of tool-parameter fields).
            objective_names: Report fields to minimize.
        """
        if not configs:
            raise ValueError("empty configuration pool")
        self.flow = flow
        self.configs = [
            c if isinstance(c, ToolParameters)
            else ToolParameters.from_dict(dict(c))
            for c in configs
        ]
        self.objective_names = tuple(objective_names)
        self._cache: dict[int, np.ndarray] = {}

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return len(self.configs)

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return len(self.objective_names)

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far."""
        return len(self._cache)

    def evaluate(self, index: int) -> np.ndarray:
        """Run the flow for candidate ``index`` (cached)."""
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        index = int(index)
        if index not in self._cache:
            report = self.flow.run(self.configs[index])
            self._cache[index] = np.array(
                report.objectives(self.objective_names)
            )
        return self._cache[index].copy()

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`."""
        return np.vstack([self.evaluate(int(i)) for i in indices])
