"""Evaluation oracles: how tuners obtain golden QoR values.

All tuners in this repository are *pool-based*, like the paper's
experiments: candidates are the rows of an offline benchmark table, and
"running the PD tool" on candidate ``i`` reveals its golden QoR vector.
:class:`PoolOracle` serves precomputed tables (the offline benchmarks);
:class:`FlowOracle` invokes the live simulated tool, for use outside the
benchmark protocol (e.g. the examples).

The stable contract both satisfy — and the one :class:`PPATuner
<repro.core.tuner.PPATuner>` and every baseline are typed against — is
the :class:`Oracle` protocol.  Third-party oracles (a real EDA tool, an
RPC service) only need to implement it; no inheritance and no
``isinstance`` checks against concrete classes anywhere in the loop.
Because the contract is structural, oracles compose by decoration:
:class:`~repro.reliability.ResilientOracle` adds retry/timeout/breaker
behavior and :class:`~repro.reliability.FaultInjectingOracle` injects
seeded chaos, and both are again valid oracles.

Every oracle counts evaluations — the paper's cost metric ("Runs").
Re-evaluating an index is served from cache and not recounted.  Both
built-in oracles also emit a :class:`~repro.obs.events.ToolEvaluation`
trace event per ``evaluate`` call (latency, cache hit, observed vector)
when given a :class:`~repro.obs.recorder.TraceRecorder`; the default
null recorder makes the disabled path one truthiness check.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..obs.events import ToolEvaluation
from ..obs.recorder import NULL_RECORDER
from ..pdtool.flow import PDFlow
from ..pdtool.params import ToolParameters
from ..space.space import Configuration

__all__ = ["CallableOracle", "FlowOracle", "Oracle", "PoolOracle"]


@runtime_checkable
class Oracle(Protocol):
    """The evaluation contract of the tuning loop.

    Implementations map a fixed candidate pool (by index) to golden
    objective vectors, count distinct tool runs, and can be reset for a
    fresh tuning run.
    """

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        ...

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        ...

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far (the paper's 'Runs')."""
        ...

    def evaluate(self, index: int) -> np.ndarray:
        """Golden QoR vector of pool candidate ``index``."""
        ...

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Row-per-index golden QoR matrix, in ``indices`` order."""
        ...

    def reset(self) -> None:
        """Forget the evaluation count (fresh tuning run)."""
        ...


class PoolOracle:
    """Oracle over a precomputed objective table.

    Attributes:
        Y: ``(n, m)`` golden objective matrix (minimization).
        recorder: Trace recorder fed one ``ToolEvaluation`` per call.
    """

    def __init__(self, Y: np.ndarray, recorder=None) -> None:
        """Wrap the golden table ``Y``.

        Args:
            Y: ``(n, m)`` objective matrix.
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`.
        """
        self.Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if self.Y.size == 0:
            raise ValueError("empty objective table")
        self._evaluated: set[int] = set()
        self.recorder = recorder if recorder is not None else NULL_RECORDER

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return self.Y.shape[0]

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return self.Y.shape[1]

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far (the paper's 'Runs')."""
        return len(self._evaluated)

    def evaluate(self, index: int) -> np.ndarray:
        """Golden QoR vector of pool candidate ``index``.

        Raises:
            IndexError: If ``index`` is out of range.
        """
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        index = int(index)
        if self.recorder:
            start = time.perf_counter()
            cached = index in self._evaluated
            self._evaluated.add(index)
            value = self.Y[index].copy()
            self.recorder.emit(ToolEvaluation(
                index=index,
                seconds=time.perf_counter() - start,
                cached=cached,
                oracle="pool",
                values=[float(v) for v in value],
            ))
            return value
        self._evaluated.add(index)
        return self.Y[index].copy()

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order."""
        indices = [int(i) for i in indices]
        if not indices:
            return np.empty((0, self.n_objectives))
        return np.vstack([self.evaluate(i) for i in indices])

    def reset(self) -> None:
        """Forget the evaluation count (fresh tuning run)."""
        self._evaluated.clear()


def _flow_eval_task(
    flow: PDFlow, config: ToolParameters, names: tuple[str, ...]
) -> tuple[np.ndarray, float]:
    """Worker-side single flow run (module level so it pickles).

    Returns:
        ``(values, seconds)`` — the extracted QoR vector and the
        worker-measured wall time of the run.
    """
    start = time.perf_counter()
    report = flow.run(config)
    values = np.array(report.objectives(names))
    return values, time.perf_counter() - start


class FlowOracle:
    """Oracle that invokes the simulated PD flow on demand.

    With ``workers > 1``, :meth:`evaluate_batch` fans the uncached
    configurations of a batch out over a process pool — the paper's
    parallel tool licenses.  The flow is deterministic per
    configuration, so pool results are bit-identical to serial runs;
    only wall-clock changes.

    Attributes:
        flow: The tool instance.
        configs: Pool of tool configurations, by index.
        objective_names: QoR metrics to extract from each report.
        recorder: Trace recorder fed one ``ToolEvaluation`` per call.
        workers: Parallel licenses for :meth:`evaluate_batch`.
    """

    def __init__(
        self,
        flow: PDFlow,
        configs: list[ToolParameters] | list[Configuration],
        objective_names: tuple[str, ...] = ("power", "delay"),
        recorder=None,
        workers: int = 1,
        decoder: Callable[[np.ndarray], ToolParameters | Configuration]
        | None = None,
    ) -> None:
        """Create the oracle.

        Args:
            flow: Simulated PD tool.
            configs: Candidate configurations (``ToolParameters`` or
                plain dicts of tool-parameter fields).
            objective_names: Report fields to minimize.
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`.
            workers: Process-pool width for batch evaluation; 1 keeps
                the serial path.
            decoder: Optional ``(pool row) -> configuration`` mapping
                enabling :meth:`extend` — required when the tuning
                session refines its candidate pool mid-run.
        """
        if not configs:
            raise ValueError("empty configuration pool")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.flow = flow
        self.configs = [
            c if isinstance(c, ToolParameters)
            else ToolParameters.from_dict(dict(c))
            for c in configs
        ]
        self.objective_names = tuple(objective_names)
        self._cache: dict[int, np.ndarray] = {}
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.workers = int(workers)
        self._decoder = decoder

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return len(self.configs)

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return len(self.objective_names)

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs so far."""
        return len(self._cache)

    def evaluate(self, index: int) -> np.ndarray:
        """Run the flow for candidate ``index`` (cached)."""
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        index = int(index)
        start = time.perf_counter()
        cached = index in self._cache
        if not cached:
            report = self.flow.run(self.configs[index])
            self._cache[index] = np.array(
                report.objectives(self.objective_names)
            )
        value = self._cache[index].copy()
        if self.recorder:
            self.recorder.emit(ToolEvaluation(
                index=index,
                seconds=time.perf_counter() - start,
                cached=cached,
                oracle="flow",
                values=[float(v) for v in value],
            ))
        return value

    @property
    def supports_parallel_batch(self) -> bool:
        """Whether :meth:`evaluate_batch` runs batch members concurrently."""
        return self.workers > 1

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order.

        With ``workers > 1`` the distinct uncached indices of the batch
        run concurrently on a process pool (duplicates are evaluated
        once and served from cache).  Trace events are emitted in
        ``indices`` order either way, with the same cached-flag
        semantics the serial path produces.
        """
        indices = [int(i) for i in indices]
        if not indices:
            return np.empty((0, self.n_objectives))
        if self.workers > 1:
            fresh: list[int] = []
            for i in indices:
                if i not in self._cache and i not in fresh:
                    if not 0 <= i < self.n_candidates:
                        raise IndexError(f"candidate {i} out of range")
                    fresh.append(i)
            if len(fresh) > 1:
                seconds: dict[int, float] = {}
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(fresh))
                ) as pool:
                    futures = {
                        i: pool.submit(
                            _flow_eval_task, self.flow,
                            self.configs[i], self.objective_names,
                        )
                        for i in fresh
                    }
                    for i, fut in futures.items():
                        values, secs = fut.result()
                        self._cache[i] = values
                        seconds[i] = secs
                        # Worker processes advance their own copies of
                        # the flow; mirror the run count here so the
                        # paper's cost unit stays honest.
                        self.flow._run_count += 1
                if self.recorder:
                    seen: set[int] = set()
                    for i in indices:
                        hot = i in seconds and i not in seen
                        seen.add(i)
                        self.recorder.emit(ToolEvaluation(
                            index=i,
                            seconds=seconds[i] if hot else 0.0,
                            cached=not hot,
                            oracle="flow",
                            values=[float(v) for v in self._cache[i]],
                        ))
                return np.vstack([self._cache[i].copy() for i in indices])
        return np.vstack([self.evaluate(i) for i in indices])

    def extend(self, X_new: np.ndarray) -> None:
        """Append decoded pool rows as new candidate configurations.

        Args:
            X_new: ``(k, d)`` normalized feature rows (the tuning
                session's pool representation).

        Raises:
            RuntimeError: If the oracle was built without a ``decoder``.
        """
        if self._decoder is None:
            raise RuntimeError(
                "FlowOracle cannot extend its pool without a decoder; "
                "pass decoder= at construction or disable pool "
                "refinement (pool_refine_every=0)"
            )
        for row in np.atleast_2d(np.asarray(X_new, dtype=float)):
            c = self._decoder(row)
            self.configs.append(
                c if isinstance(c, ToolParameters)
                else ToolParameters.from_dict(dict(c))
            )

    def reset(self) -> None:
        """Drop the run cache and evaluation count (fresh tuning run).

        Subsequent evaluations invoke the flow again — the simulated
        tool is deterministic, but a reset run pays its runtime anew.
        """
        self._cache.clear()


class CallableOracle:
    """Oracle over a plain function of the pool's feature rows.

    Evaluating candidate ``i`` calls ``func(X[i])`` and expects the QoR
    vector back.  Batches run on a thread pool when ``workers > 1`` —
    the natural fit for functions that sleep (latency models in the
    batching benchmarks) or release the GIL.  The pool is extendable,
    so refined candidates need no decoder: new rows simply join ``X``.

    Attributes:
        func: ``(x,) -> (m,)`` objective function (minimization).
        X: ``(n, d)`` candidate feature matrix.
        recorder: Trace recorder fed one ``ToolEvaluation`` per call.
        workers: Thread-pool width for batch evaluation.
    """

    def __init__(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        X: np.ndarray,
        n_objectives: int,
        recorder=None,
        workers: int = 1,
    ) -> None:
        """Wrap ``func`` over the candidate rows of ``X``.

        Args:
            func: Objective function; must be thread-safe when
                ``workers > 1``.
            X: ``(n, d)`` candidate matrix.
            n_objectives: Length of the vectors ``func`` returns.
            recorder: Optional :class:`~repro.obs.recorder.TraceRecorder`.
            workers: Parallel evaluations per batch; 1 keeps the
                serial path.
        """
        self.X = np.atleast_2d(np.asarray(X, dtype=float)).copy()
        if self.X.size == 0:
            raise ValueError("empty candidate matrix")
        if n_objectives < 1:
            raise ValueError("n_objectives must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.func = func
        self._n_objectives = int(n_objectives)
        self._cache: dict[int, np.ndarray] = {}
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.workers = int(workers)

    @property
    def n_candidates(self) -> int:
        """Pool size."""
        return self.X.shape[0]

    @property
    def n_objectives(self) -> int:
        """Number of QoR metrics."""
        return self._n_objectives

    @property
    def n_evaluations(self) -> int:
        """Distinct function calls so far (the paper's 'Runs')."""
        return len(self._cache)

    @property
    def supports_parallel_batch(self) -> bool:
        """Whether :meth:`evaluate_batch` runs batch members concurrently."""
        return self.workers > 1

    def evaluate(self, index: int) -> np.ndarray:
        """QoR vector of pool candidate ``index`` (cached)."""
        if not 0 <= index < self.n_candidates:
            raise IndexError(f"candidate {index} out of range")
        index = int(index)
        start = time.perf_counter()
        cached = index in self._cache
        if not cached:
            row = np.asarray(self.func(self.X[index]), dtype=float).ravel()
            if row.shape != (self._n_objectives,):
                raise ValueError(
                    f"func returned shape {row.shape}, expected "
                    f"({self._n_objectives},)"
                )
            self._cache[index] = row
        value = self._cache[index].copy()
        if self.recorder:
            self.recorder.emit(ToolEvaluation(
                index=index,
                seconds=time.perf_counter() - start,
                cached=cached,
                oracle="callable",
                values=[float(v) for v in value],
            ))
        return value

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order.

        With ``workers > 1`` the distinct uncached indices run
        concurrently on a thread pool; duplicates are evaluated once.
        """
        indices = [int(i) for i in indices]
        if not indices:
            return np.empty((0, self.n_objectives))
        if self.workers > 1:
            fresh = []
            for i in indices:
                if i not in self._cache and i not in fresh:
                    if not 0 <= i < self.n_candidates:
                        raise IndexError(f"candidate {i} out of range")
                    fresh.append(i)
            if len(fresh) > 1:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(fresh))
                ) as pool:
                    rows = list(pool.map(
                        lambda i: np.asarray(
                            self.func(self.X[i]), dtype=float
                        ).ravel(),
                        fresh,
                    ))
                for i, row in zip(fresh, rows):
                    if row.shape != (self._n_objectives,):
                        raise ValueError(
                            f"func returned shape {row.shape}, expected "
                            f"({self._n_objectives},)"
                        )
                    self._cache[i] = row
                if self.recorder:
                    seen: set[int] = set()
                    for i in indices:
                        hot = i in fresh and i not in seen
                        seen.add(i)
                        self.recorder.emit(ToolEvaluation(
                            index=i,
                            seconds=0.0,
                            cached=not hot,
                            oracle="callable",
                            values=[float(v) for v in self._cache[i]],
                        ))
                return np.vstack([self._cache[i].copy() for i in indices])
        return np.vstack([self.evaluate(i) for i in indices])

    def extend(self, X_new: np.ndarray) -> None:
        """Append new candidate rows to the pool.

        Args:
            X_new: ``(k, d)`` feature rows matching ``X``'s width.
        """
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        if X_new.shape[1] != self.X.shape[1]:
            raise ValueError(
                f"row width {X_new.shape[1]} != pool width "
                f"{self.X.shape[1]}"
            )
        self.X = np.vstack([self.X, X_new])

    def reset(self) -> None:
        """Forget the evaluation count (fresh tuning run)."""
        self._cache.clear()
