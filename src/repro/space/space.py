"""Parameter-space container: configurations <-> feature vectors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .parameters import Parameter

#: A configuration is a plain name->value mapping.
Configuration = dict[str, object]


@dataclass(frozen=True)
class ParameterSpace:
    """An ordered collection of :class:`Parameter` definitions.

    Provides the encode/decode layer between native tool configurations
    and the normalized float matrices the surrogate models operate on.

    Attributes:
        parameters: The parameters, in feature-column order.
    """

    parameters: tuple[Parameter, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        if not self.parameters:
            raise ValueError("empty parameter space")

    @property
    def names(self) -> list[str]:
        """Parameter names in column order."""
        return [p.name for p in self.parameters]

    @property
    def dim(self) -> int:
        """Number of parameters (feature columns)."""
        return len(self.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise KeyError(name)

    def validate(self, config: Configuration) -> None:
        """Check that ``config`` covers exactly this space's domain.

        Raises:
            ValueError: On missing/extra names or out-of-domain values.
        """
        missing = set(self.names) - set(config)
        extra = set(config) - set(self.names)
        if missing or extra:
            raise ValueError(
                f"configuration mismatch: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        for p in self.parameters:
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"{p.name}={config[p.name]!r} outside its domain"
                )

    def from_unit(self, unit_row: np.ndarray) -> Configuration:
        """Decode one row of unit-cube samples to a configuration."""
        if len(unit_row) != self.dim:
            raise ValueError(
                f"expected {self.dim} unit values, got {len(unit_row)}"
            )
        return {
            p.name: p.from_unit(float(u))
            for p, u in zip(self.parameters, unit_row)
        }

    def encode(self, config: Configuration) -> np.ndarray:
        """Configuration -> raw feature vector (enum index, float, ...)."""
        return np.array(
            [p.to_feature(config[p.name]) for p in self.parameters]
        )

    def encode_many(self, configs: list[Configuration]) -> np.ndarray:
        """Configurations -> ``(n, dim)`` raw feature matrix."""
        return np.array([self.encode(c) for c in configs]).reshape(
            len(configs), self.dim
        )

    def decode(self, features: np.ndarray) -> Configuration:
        """Feature vector -> configuration (values snapped to domain)."""
        if len(features) != self.dim:
            raise ValueError(
                f"expected {self.dim} features, got {len(features)}"
            )
        return {
            p.name: p.from_feature(float(f))
            for p, f in zip(self.parameters, features)
        }

    def feature_bounds(self) -> np.ndarray:
        """Per-column (low, high) bounds as a ``(dim, 2)`` array."""
        return np.array([p.feature_bounds() for p in self.parameters])

    def normalize(self, features: np.ndarray) -> np.ndarray:
        """Scale raw features (rows) into the unit cube per column.

        Degenerate columns (zero span) map to 0.5.
        """
        bounds = self.feature_bounds()
        span = bounds[:, 1] - bounds[:, 0]
        safe = np.where(span > 0, span, 1.0)
        out = (np.atleast_2d(features) - bounds[:, 0]) / safe
        out = np.where(span > 0, out, 0.5)
        return out.reshape(np.atleast_2d(features).shape)
