"""Space sampling: Latin hypercube (the paper's scheme), random, and grid.

The paper builds its offline benchmarks by Latin-hypercube selection of
parameter configuration points (Section 4.1); :func:`latin_hypercube` is a
self-contained implementation (no scipy.qmc dependency in hot paths, and
deterministic under a seed).
"""

from __future__ import annotations

import numpy as np

from .space import Configuration, ParameterSpace


def latin_hypercube(
    space: ParameterSpace, n: int, seed: int | None = None
) -> list[Configuration]:
    """Latin-hypercube sample of ``n`` configurations.

    Each dimension is split into ``n`` equal strata; every stratum is hit
    exactly once, with uniform jitter inside the stratum and an independent
    random permutation per dimension.

    Args:
        space: The space to sample.
        n: Number of configurations (>= 1).
        seed: RNG seed for reproducibility.

    Returns:
        ``n`` configurations (duplicates possible after discretization of
        int/enum/bool parameters; see :func:`unique_configurations`).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    unit = np.empty((n, space.dim))
    for j in range(space.dim):
        perm = rng.permutation(n)
        unit[:, j] = (perm + rng.uniform(size=n)) / n
    return [space.from_unit(row) for row in unit]


def latin_hypercube_unit(
    n: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Raw unit-cube Latin-hypercube rows (no parameter space).

    The building block behind :func:`latin_hypercube`, exposed for
    callers that stratify a plain box rather than a
    :class:`ParameterSpace` — adaptive pool refinement zooms these rows
    into boxes around live candidates.

    Args:
        n: Number of rows (>= 1).
        dim: Dimensionality.
        rng: Generator supplying the strata jitter and permutations
            (caller-owned so the sample is reproducible).

    Returns:
        ``(n, dim)`` array in ``[0, 1)``; every dimension hits each of
        the ``n`` strata exactly once.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    unit = np.empty((n, dim))
    for j in range(dim):
        perm = rng.permutation(n)
        unit[:, j] = (perm + rng.uniform(size=n)) / n
    return unit


def random_sample(
    space: ParameterSpace, n: int, seed: int | None = None
) -> list[Configuration]:
    """Uniform random sample of ``n`` configurations."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    unit = rng.uniform(size=(n, space.dim))
    return [space.from_unit(row) for row in unit]


def grid_sample(
    space: ParameterSpace, points_per_dim: int
) -> list[Configuration]:
    """Full-factorial grid with ``points_per_dim`` levels per dimension.

    Beware combinatorial growth; intended for small spaces and tests.
    """
    if points_per_dim < 2:
        raise ValueError("points_per_dim must be >= 2")
    axes = [
        np.linspace(0.0, 1.0, points_per_dim) for _ in range(space.dim)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    unit = np.stack([m.ravel() for m in mesh], axis=1)
    return [space.from_unit(row) for row in unit]


def unique_configurations(
    configs: list[Configuration],
) -> list[Configuration]:
    """Drop exact duplicates, preserving first-seen order."""
    seen: set[tuple] = set()
    out: list[Configuration] = []
    for c in configs:
        key = tuple(sorted(c.items()))
        if key not in seen:
            seen.add(key)
            out.append(c)
    return out
