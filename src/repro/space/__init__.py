"""Typed parameter spaces, encoding, and sampling."""

from .parameters import (
    BoolParameter,
    EnumParameter,
    FloatParameter,
    IntParameter,
    Parameter,
)
from .sampling import (
    grid_sample,
    latin_hypercube,
    latin_hypercube_unit,
    random_sample,
    unique_configurations,
)
from .space import Configuration, ParameterSpace

__all__ = [
    "BoolParameter",
    "Configuration",
    "EnumParameter",
    "FloatParameter",
    "IntParameter",
    "Parameter",
    "ParameterSpace",
    "grid_sample",
    "latin_hypercube",
    "latin_hypercube_unit",
    "random_sample",
    "unique_configurations",
]
