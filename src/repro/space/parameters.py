"""Typed tunable-parameter definitions.

A parameter couples a name to a domain and knows how to move between three
representations:

- **value**: the native Python value the tool consumes (float, int, bool,
  or an enum string);
- **unit**: a position in ``[0, 1]`` (what samplers produce);
- **feature**: a float the surrogate models see (ordinal index for enums).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


class Parameter(ABC):
    """Abstract tunable parameter.

    Attributes:
        name: Parameter name (matches a :class:`ToolParameters` field).
    """

    name: str

    @abstractmethod
    def from_unit(self, u: float) -> object:
        """Map ``u`` in [0, 1] to a native value."""

    @abstractmethod
    def to_feature(self, value: object) -> float:
        """Map a native value to the model-facing float."""

    @abstractmethod
    def from_feature(self, feature: float) -> object:
        """Map (and snap) a model-facing float back to a native value."""

    @abstractmethod
    def feature_bounds(self) -> tuple[float, float]:
        """Inclusive (low, high) range of the feature representation."""

    @abstractmethod
    def contains(self, value: object) -> bool:
        """Whether ``value`` lies in this parameter's domain."""

    def _check_unit(self, u: float) -> float:
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"{self.name}: unit sample {u} outside [0, 1]")
        return float(u)


@dataclass(frozen=True)
class FloatParameter(Parameter):
    """A continuous parameter on ``[low, high]``.

    Attributes:
        name: Parameter name.
        low: Lower bound (inclusive).
        high: Upper bound (inclusive).
    """

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def from_unit(self, u: float) -> float:
        u = self._check_unit(u)
        return self.low + u * (self.high - self.low)

    def to_feature(self, value: object) -> float:
        return float(value)  # type: ignore[arg-type]

    def from_feature(self, feature: float) -> float:
        return float(min(max(feature, self.low), self.high))

    def feature_bounds(self) -> tuple[float, float]:
        return (self.low, self.high)

    def contains(self, value: object) -> bool:
        return (
            isinstance(value, (int, float))
            and self.low <= float(value) <= self.high
        )


@dataclass(frozen=True)
class IntParameter(Parameter):
    """An integer parameter on ``[low, high]`` (inclusive).

    Attributes:
        name: Parameter name.
        low: Lower bound.
        high: Upper bound.
    """

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def from_unit(self, u: float) -> int:
        u = self._check_unit(u)
        span = self.high - self.low + 1
        return int(min(self.low + int(u * span), self.high))

    def to_feature(self, value: object) -> float:
        return float(value)  # type: ignore[arg-type]

    def from_feature(self, feature: float) -> int:
        return int(min(max(round(feature), self.low), self.high))

    def feature_bounds(self) -> tuple[float, float]:
        return (float(self.low), float(self.high))

    def contains(self, value: object) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.low <= value <= self.high
        )


@dataclass(frozen=True)
class BoolParameter(Parameter):
    """A boolean parameter.

    Attributes:
        name: Parameter name.
    """

    name: str

    def from_unit(self, u: float) -> bool:
        u = self._check_unit(u)
        return u >= 0.5

    def to_feature(self, value: object) -> float:
        return 1.0 if value else 0.0

    def from_feature(self, feature: float) -> bool:
        return feature >= 0.5

    def feature_bounds(self) -> tuple[float, float]:
        return (0.0, 1.0)

    def contains(self, value: object) -> bool:
        return isinstance(value, bool)


@dataclass(frozen=True)
class EnumParameter(Parameter):
    """An ordered categorical parameter.

    The paper's effort-style knobs (``flowEffort``, ``cong_effort``,
    ``timing_effort``) are ordinal — levels have a natural order — so the
    feature representation is the level index.

    Attributes:
        name: Parameter name.
        levels: Ordered tuple of allowed string values.
    """

    name: str
    levels: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError(f"{self.name}: need at least two levels")
        if len(set(self.levels)) != len(self.levels):
            raise ValueError(f"{self.name}: duplicate levels")

    def from_unit(self, u: float) -> str:
        u = self._check_unit(u)
        idx = min(int(u * len(self.levels)), len(self.levels) - 1)
        return self.levels[idx]

    def to_feature(self, value: object) -> float:
        return float(self.levels.index(value))  # type: ignore[arg-type]

    def from_feature(self, feature: float) -> str:
        idx = int(min(max(round(feature), 0), len(self.levels) - 1))
        return self.levels[idx]

    def feature_bounds(self) -> tuple[float, float]:
        return (0.0, float(len(self.levels) - 1))

    def contains(self, value: object) -> bool:
        return value in self.levels
