"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``generate``      build/refresh the offline benchmark tables
- ``tune``          run PPATuner on one benchmark pair
- ``scenario``      reproduce a paper table (``one``/``two``) or run a
  cross-design transfer scenario (``mac_to_fabric``,
  ``cpu_small_to_large``, ``fabric_to_cpu``)
- ``experiments``   run the whole suite through the parallel runner
- ``sensitivity``   parameter-sensitivity report for one benchmark
- ``importance``    FIST-style knob-importance ranking for one benchmark
- ``export``        write a generated design netlist as structural
  Verilog (any registered design family)
- ``cache``         inspect/heal the benchmark cache (verify/clear/info)
- ``trace``         inspect recorded tuning traces (show/summary/diff)

Fault tolerance: ``tune``/``scenario``/``experiments`` accept
``--max-retries`` and ``--eval-timeout`` to override the evaluation
fault policy (retry budget / per-call timeout); setting the
``PPATUNER_FAULT_SEED`` environment variable injects a deterministic
transient-fault schedule into every cell for chaos testing.

Tracing: ``tune --trace FILE`` records the run's event stream as JSONL;
``scenario``/``experiments`` accept ``--trace-dir DIR`` to record every
cell to ``trace-<spec_hash>.jsonl`` in that directory.  Recorded traces
replay without re-running the tool (``repro trace summary FILE``).

Scenario/experiment runs fan their independent cells out over a process
pool (``--workers``, or the ``PPATUNER_WORKERS`` environment variable)
and memoize completed cells under ``.cache/runs`` (``PPATUNER_RUN_CACHE``
overrides): a killed invocation re-executes only unfinished cells on
restart, ``--force`` invalidates and re-runs, ``--no-resume`` disables
memoization for the invocation.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_generate(args: argparse.Namespace) -> int:
    from .bench import generate_all, generate_benchmark
    from .experiments import format_benchmark_table

    if args.benchmark == "all":
        benches = generate_all(cache=not args.no_cache)
    else:
        benches = {
            args.benchmark: generate_benchmark(
                args.benchmark, n_points=args.points,
                cache=not args.no_cache,
            )
        }
    print(format_benchmark_table([b.summary() for b in benches.values()]))
    return 0


def _fault_policy_from_args(args: argparse.Namespace):
    """A FaultPolicy override when any resilience flag was given.

    ``None`` (no flags) keeps the config default — and, for scenario
    runs, the unchanged spec hashes of existing memo entries.
    """
    import dataclasses

    from .reliability import FaultPolicy

    overrides = {}
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "eval_timeout", None) is not None:
        overrides["timeout_s"] = args.eval_timeout
    if not overrides:
        return None
    return dataclasses.replace(FaultPolicy(), **overrides)


def _cmd_tune(args: argparse.Namespace) -> int:
    from .bench import OBJECTIVE_SPACES, generate_benchmark
    from .core import PoolOracle, PPATuner, PPATunerConfig
    from .obs import NULL_RECORDER, JsonlSink, TraceRecorder
    from .pareto import adrs, hypervolume_error, pareto_front

    names = OBJECTIVE_SPACES[args.objectives]
    target = generate_benchmark(args.target)
    if args.scale:
        target = target.subsample(args.scale, seed=args.seed)
    if args.pool_refine_every > 0:
        # Refined candidates are new configurations with no row in the
        # cached table — evaluate through the live flow instead.
        from .bench.generate import design_base_params, get_flow
        from .core import CallableOracle
        from .pdtool.params import ToolParameters

        flow = get_flow(target.design)
        base = design_base_params(target.design)
        space = target.space

        def _run_flow(x: np.ndarray) -> np.ndarray:
            merged = {**base, **dict(space.decode(x))}
            report = flow.run(ToolParameters.from_dict(merged))
            return np.asarray(report.objectives(names))

        oracle = CallableOracle(
            _run_flow, target.X, len(names), workers=max(1, args.q)
        )
    else:
        oracle = PoolOracle(target.objectives(names))

    kwargs = {}
    if args.source:
        source = generate_benchmark(args.source)
        rng = np.random.default_rng(args.seed)
        idx = rng.choice(
            source.n, min(args.n_source, source.n), replace=False
        )
        kwargs = {
            "sources": [(
                source.X[idx],
                source.objectives(names)[idx],
            )],
        }

    recorder = NULL_RECORDER
    if args.trace:
        recorder = TraceRecorder(sinks=[JsonlSink(args.trace)])
    policy = _fault_policy_from_args(args)
    config = PPATunerConfig(
        max_iterations=args.max_iterations, seed=args.seed,
        q=args.q, pool_refine_every=args.pool_refine_every,
        warm_start=args.warm_start,
    )
    if policy is not None:
        import dataclasses

        config = dataclasses.replace(config, fault_policy=policy)
    try:
        result = PPATuner(config, recorder=recorder).tune(
            target.X, oracle, **kwargs
        )
    finally:
        recorder.close()
    if args.trace:
        print(f"trace: {args.trace} ({recorder.n_emitted} events)")

    golden = target.golden_front(names)
    found = pareto_front(result.pareto_points)
    print(f"runs={result.n_evaluations} iterations={result.n_iterations} "
          f"stop={result.stop_reason}")
    print(f"hv_error={hypervolume_error(found, golden):.4f} "
          f"adrs={adrs(golden, found):.4f} "
          f"pareto_found={len(result.pareto_indices)}")
    for row in found:
        print("  " + "  ".join(f"{v:10.4f}" for v in row))
    return 0


def _experiment_runner(args: argparse.Namespace):
    """Build the memoizing runner shared by scenario/experiments."""
    from .runner import ExperimentRunner, RunMemo

    memo = RunMemo() if args.resume or args.force else None
    return ExperimentRunner(
        workers=args.workers,
        memo=memo,
        resume=args.resume,
        force=args.force,
        progress=print,
        trace_dir=args.trace_dir,
    )


def _parse_methods(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    methods = tuple(m.strip() for m in raw.split(",") if m.strip())
    if not methods:
        raise SystemExit("--methods must name at least one method")
    return methods


def _prune_from_args(args: argparse.Namespace) -> dict | None:
    """Pruning settings when ``--prune-space`` was given, else None."""
    if not getattr(args, "prune_space", False):
        return None
    settings = {}
    if getattr(args, "prune_threshold", None) is not None:
        settings["threshold"] = args.prune_threshold
    return settings


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .experiments import (
        CROSS_DESIGN_METHODS,
        PAPER_METHODS,
        cross_design_scenario,
        export_scenario_csv,
        export_scenario_json,
        format_scenario_table,
        scenario_one,
        scenario_two,
    )

    common = dict(
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        runner=_experiment_runner(args),
        n_points=args.points,
        fault_policy=_fault_policy_from_args(args),
        prune_space=_prune_from_args(args),
    )
    if args.which in ("one", "two"):
        scenario = scenario_one if args.which == "one" else scenario_two
        methods = _parse_methods(args.methods) or PAPER_METHODS
        result = scenario(methods=methods, **common)
    else:
        methods = _parse_methods(args.methods) or CROSS_DESIGN_METHODS
        result = cross_design_scenario(args.which, methods=methods,
                                       **common)
    print(format_scenario_table(result, methods=methods))
    if args.json:
        export_scenario_json(result, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        export_scenario_csv(result, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import (
        PAPER_METHODS,
        convergence_suite,
        format_convergence_table,
        format_scenario_table,
        format_scenario_three,
        scenario_one,
        scenario_three,
        scenario_two,
    )
    from .runner import DatasetRef, format_telemetry_table

    methods = _parse_methods(args.methods) or PAPER_METHODS
    runner = _experiment_runner(args)
    fault_policy = _fault_policy_from_args(args)

    print("== Scenario One (Table 2) ==")
    one = scenario_one(
        scale=args.scale, seed=args.seed, methods=methods,
        repeats=args.repeats, runner=runner, n_points=args.points,
        fault_policy=fault_policy,
    )
    print(format_scenario_table(one, methods=methods))

    print("\n== Scenario Two (Table 3) ==")
    two = scenario_two(
        scale=args.scale, seed=args.seed, methods=methods,
        repeats=args.repeats, runner=runner, n_points=args.points,
        fault_policy=fault_policy,
    )
    print(format_scenario_table(two, methods=methods))

    print("\n== Scenario Three (mixed archives) ==")
    three = scenario_three(
        seed=args.seed, runner=runner,
        n_points=args.points, scale=args.scale,
    )
    print(format_scenario_three(three))

    print("\n== Anytime convergence (Target2 power-delay) ==")
    source_ref = DatasetRef("source2", n_points=args.points)
    target_ref = DatasetRef(
        "target2", n_points=args.points,
        subsample=args.scale, subsample_seed=args.seed,
    )
    curves = convergence_suite(
        source_ref.resolve(), target_ref.resolve(),
        ("power", "delay"), methods, seed=args.seed, runner=runner,
        source_ref=source_ref, target_ref=target_ref,
    )
    print(format_convergence_table(curves))

    print("\n== Telemetry ==")
    print(format_telemetry_table(runner.history))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .bench import generate_benchmark
    from .experiments.sensitivity import analyze_sensitivity

    dataset = generate_benchmark(args.benchmark)
    report = analyze_sensitivity(dataset, seed=args.seed)
    print(report.format())
    for metric in report.metric_names:
        top = ", ".join(report.top_parameters(metric, 3))
        print(f"top-3 for {metric}: {top}")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    from .bench import generate_benchmark
    from .ml import prune_space

    dataset = generate_benchmark(args.benchmark, n_points=args.points)
    pruned = prune_space(
        dataset.space, dataset.X, dataset.Y,
        threshold=args.threshold, min_keep=args.min_keep,
        method=args.method, seed=args.seed,
    )
    print(pruned.report.format())
    print(f"\nkeep ({len(pruned.kept)}): {', '.join(pruned.kept)}")
    if pruned.dropped:
        print(f"prune ({len(pruned.dropped)}): "
              f"{', '.join(pruned.dropped)}")
    else:
        print("prune (0): none below threshold")
    if args.json:
        import json

        payload = {
            "benchmark": args.benchmark,
            "method": pruned.report.method,
            "threshold": pruned.threshold,
            "importances": {
                n: float(v) for n, v in pruned.report.ranked()
            },
            "kept": list(pruned.kept),
            "dropped": list(pruned.dropped),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import warnings

    from .pdtool import design_family, resolve_design, write_verilog

    with warnings.catch_warnings():
        # Legacy "small"/"large" stay accepted here without noise.
        warnings.simplefilter("ignore", DeprecationWarning)
        design = resolve_design(args.design)
    netlist = design_family(design).netlist(design)
    write_verilog(netlist, args.output)
    print(f"wrote {args.output} ({netlist.n_cells} cells, "
          f"{netlist.n_primary_inputs} inputs)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .bench import CACHE_VERSION, BenchmarkStore, default_cache_dir

    store = BenchmarkStore(default_cache_dir())
    if args.action == "verify":
        reports = store.verify(current_version=CACHE_VERSION)
        if not reports:
            print(f"cache at {store.root} is empty")
            return 0
        for report in reports:
            line = f"{report.status:>12}  {report.filename}"
            if report.detail:
                line += f"  ({report.detail})"
            print(line)
        healed = sum(r.status != "ok" for r in reports)
        print(f"{len(reports)} file(s) checked, {healed} healed/removed")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} file(s) from {store.root}")
        return 0
    info = store.info()
    print(f"cache root: {info['root']}")
    print(f"tables: {info['n_files']}  "
          f"total: {info['total_bytes'] / 1024:.1f} KiB  "
          f"current version: v{CACHE_VERSION}")
    for entry in info["entries"]:
        manifested = "manifested" if entry["manifested"] else "legacy"
        builds = entry["builds"]
        builds_txt = f" builds={builds}" if builds is not None else ""
        print(f"  {entry['filename']}  {entry['size']} B  "
              f"v{entry['version']}  {manifested}{builds_txt}")
    for name in info["quarantined"]:
        print(f"  quarantined: {name}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import diff_traces, format_events, summarize_trace

    if args.action == "show":
        out = format_events(
            args.trace,
            event_type=args.type,
            iteration=args.iteration,
            limit=args.limit,
        )
        if out:
            print(out)
        return 0
    if args.action == "summary":
        print(summarize_trace(args.trace))
        return 0
    if args.other is None:
        raise SystemExit("trace diff needs two trace files")
    print(diff_traces(args.trace, args.other))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from .service import serve

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    svc = serve(root=args.store, host=args.host, port=args.port)
    n = len(svc.service.sessions())
    print(f"tuning service on {svc.url} "
          f"(store={args.store}, {n} session(s) recovered)", flush=True)
    try:
        svc.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        svc.shutdown()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PPATuner (DAC 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    benchmarks = (
        "source1", "target1", "source2", "target2",
        "source3", "fabric1", "fabric2", "cpu1", "cpu2",
    )

    p = sub.add_parser("generate", help="build offline benchmark tables")
    p.add_argument("benchmark", choices=("all",) + benchmarks)
    p.add_argument("--points", type=int, default=None,
                   help="pool size override")
    p.add_argument("--no-cache", action="store_true")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("tune", help="run PPATuner on a benchmark")
    p.add_argument("target", choices=benchmarks)
    p.add_argument("--source", choices=benchmarks, default=None)
    p.add_argument("--objectives", default="power-delay", choices=(
        "area-delay", "power-delay", "area-power-delay",
    ))
    p.add_argument("--scale", type=int, default=None,
                   help="subsample the target pool")
    p.add_argument("--n-source", type=int, default=200)
    p.add_argument("--max-iterations", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--warm-start", choices=("random", "copula"),
                   default="random",
                   help="initial-design mode: copula seeds from the "
                        "source archive (requires --source)")
    p.add_argument("--q", type=int, default=1,
                   help="evaluations per synchronous round (parallel "
                        "tool licenses); 1 keeps the paper's serial "
                        "loop")
    p.add_argument("--pool-refine-every", type=int, default=0,
                   metavar="N",
                   help="every N iterations, zoom new LHS candidates "
                        "around the live uncertainty rectangles "
                        "(0 disables; re-runs the flow for refined "
                        "points instead of the cached table)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="record the run's event stream to a JSONL file")
    p.add_argument("--max-retries", type=int, default=None,
                   help="retries per evaluation before quarantine "
                        "(default: the FaultPolicy default)")
    p.add_argument("--eval-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-evaluation timeout (default: none)")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "serve",
        help="run the multi-session ask/tell tuning service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8763,
                   help="listen port (0 picks a free one)")
    p.add_argument("--store", default=".cache/sessions",
                   help="snapshot/trace directory; sessions found here "
                        "are recovered on startup")
    p.add_argument("--verbose", action="store_true",
                   help="debug-level request logging")
    p.set_defaults(func=_cmd_serve)

    def add_runner_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=int, default=None,
                       help="subsample the target pool")
        p.add_argument("--points", type=int, default=None,
                       help="pool-size override for benchmark generation")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--workers", type=int, default=None,
                       help="process count (default: PPATUNER_WORKERS "
                            "or the CPU count)")
        p.add_argument("--repeats", type=int, default=1,
                       help="independent repeats per cell")
        p.add_argument("--methods", default=None,
                       help="comma-separated method subset")
        p.add_argument("--resume", dest="resume", action="store_true",
                       default=True,
                       help="skip memoized cells (default)")
        p.add_argument("--no-resume", dest="resume",
                       action="store_false",
                       help="ignore and do not write the run memo")
        p.add_argument("--force", action="store_true",
                       help="invalidate memoized cells and re-run")
        p.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="record every cell's event stream to "
                            "trace-<spec_hash>.jsonl under DIR")
        p.add_argument("--max-retries", type=int, default=None,
                       help="retries per evaluation before quarantine "
                            "(changes memo keys when set)")
        p.add_argument("--eval-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-evaluation timeout (default: none)")

    p = sub.add_parser(
        "scenario",
        help="reproduce a paper table or a cross-design scenario",
        description="one/two reproduce the paper tables; the named "
                    "scenarios transfer across design families "
                    "(MAC->fabric, small->large CPU, and the "
                    "fabric->CPU negative-transfer control).  Cells "
                    "fan out over --workers processes; completed "
                    "cells are memoized under .cache/runs so an "
                    "interrupted run resumes where it stopped.",
    )
    p.add_argument("which", choices=(
        "one", "two",
        "mac_to_fabric", "cpu_small_to_large", "fabric_to_cpu",
    ))
    add_runner_args(p)
    p.add_argument("--prune-space", action="store_true",
                   help="prune dead knobs from the tuning space via "
                        "source-table importance before every cell "
                        "(changes memo keys when set)")
    p.add_argument("--prune-threshold", type=float, default=None,
                   metavar="FRACTION",
                   help="importance cutoff for --prune-space "
                        "(default 0.05)")
    p.add_argument("--json", default=None, help="export records to JSON")
    p.add_argument("--csv", default=None, help="export records to CSV")
    p.set_defaults(func=_cmd_scenario)

    p = sub.add_parser(
        "experiments",
        help="run the whole experiment suite through the runner",
        description="Scenario One + Two tables, the mixed-archive "
                    "Scenario Three, and the anytime convergence "
                    "curves, with per-run telemetry.",
    )
    p.add_argument("suite", choices=("all",))
    add_runner_args(p)
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("sensitivity",
                       help="parameter-sensitivity report")
    p.add_argument("benchmark", choices=benchmarks)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_sensitivity)

    p = sub.add_parser(
        "importance",
        help="FIST-style knob-importance ranking for a benchmark",
        description="Ranks the benchmark's knobs by how much QoR "
                    "response they explain on its golden table and "
                    "shows which ones --prune-space would drop.",
    )
    p.add_argument("benchmark", choices=benchmarks)
    p.add_argument("--points", type=int, default=None,
                   help="pool size override")
    p.add_argument("--method", choices=("tree", "permutation"),
                   default="tree")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="importance cutoff (fraction of total)")
    p.add_argument("--min-keep", type=int, default=2,
                   help="always keep at least this many knobs")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", default=None,
                   help="write the ranking to a JSON file")
    p.set_defaults(func=_cmd_importance)

    p = sub.add_parser("export",
                       help="write a generated design as Verilog")
    p.add_argument("design", choices=(
        "mac_small", "mac_large", "fir_small", "fir_large",
        "alu_small", "alu_large", "fabric_small", "fabric_large",
        "cpu_small", "cpu_large",
        # Legacy aliases for the original MAC pair.
        "small", "large",
    ))
    p.add_argument("output")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "cache", help="inspect/heal the benchmark cache",
        description="verify: check every table, quarantine corrupt ones "
                    "and drop stale generations; clear: wipe the cache; "
                    "info: list tables and manifest state",
    )
    p.add_argument("action", choices=("verify", "clear", "info"))
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "trace", help="inspect recorded tuning traces",
        description="show: print events one per line (filterable); "
                    "summary: one-screen digest of a recorded run; "
                    "diff: iteration-aligned comparison of two runs.",
    )
    p.add_argument("action", choices=("show", "summary", "diff"))
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("other", nargs="?", default=None,
                   help="second trace (diff only)")
    p.add_argument("--type", default=None,
                   help="show only this event type")
    p.add_argument("--iteration", type=int, default=None,
                   help="show only this iteration")
    p.add_argument("--limit", type=int, default=None,
                   help="show only the last N events")
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
