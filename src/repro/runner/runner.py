"""Process-pool experiment runner with memoization and telemetry.

Turns a list of independent experiment cells (:class:`RunJob`s wrapping
hashable :class:`~repro.runner.spec.RunSpec`s) into results with three
guarantees:

- **Determinism** — cells derive every random stream from their spec
  (see :mod:`repro.runner.cells`), so the parallel output is
  bit-identical to the serial one and independent of completion order;
  results are always returned in submission order.
- **Resumability** — completed cells are memoized to disk through
  :class:`~repro.runner.memo.RunMemo`; a killed invocation skips
  finished cells on restart, and ``force=True`` invalidates first.
- **Observability** — per-run telemetry (wall time, tool runs,
  aggregated calibration counters, worker pid, memo hits) is collected
  and renderable as a progress table.  With ``trace_dir`` set, every
  cell additionally records its full :mod:`repro.obs` event stream to
  ``trace-<spec_hash>.jsonl`` in that directory — worker processes
  write their own cell's file, so parallel traces never interleave, and
  each file replays independently (``repro trace summary``).

Worker count follows the ``PPATUNER_WORKERS`` convention shared with
the benchmark cache builder.  Dataset arguments may be
:class:`~repro.runner.spec.DatasetRef`s — resolved inside each worker
through the concurrency-safe benchmark cache, so fan-out ships names,
not arrays — or in-memory pools (pickled; fine for test-scale data).
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .. import env
from ..bench.dataset import BenchmarkDataset
from ..core.config import PPATunerConfig
from .cells import execute_spec
from .memo import RunMemo
from .spec import DatasetRef, RunSpec

log = logging.getLogger(__name__)

__all__ = [
    "ExperimentRunner",
    "RunJob",
    "RunRecord",
    "RunTelemetry",
    "format_telemetry_table",
    "runner_workers",
]


def runner_workers(workers: int | None = None) -> int:
    """Effective worker count (``PPATUNER_WORKERS`` convention).

    An explicit argument wins; otherwise the environment variable, then
    the CPU count capped at 8 (same policy as the cache builder — see
    :func:`repro.env.workers`).
    """
    return env.workers(workers)


@dataclass(frozen=True)
class RunTelemetry:
    """Per-run observability record.

    Attributes:
        wall_time: Cell wall-clock seconds (0.0 when served from memo).
        runs: Tool runs the cell consumed.
        worker_pid: PID of the executing process.
        calibration: Aggregated ``CalibrationStats`` counters
            (``n_full_fits``/``n_incremental``/...), when the method
            exposes a calibration engine.
        memoized: Whether the record was served from the memo store.
        trace_path: JSONL trace file the cell wrote (empty when tracing
            was disabled).
        n_events: Trace events the cell emitted.
    """

    wall_time: float = 0.0
    runs: int = 0
    worker_pid: int = 0
    calibration: dict[str, int] = field(default_factory=dict)
    memoized: bool = False
    trace_path: str = ""
    n_events: int = 0


@dataclass
class RunRecord:
    """One completed cell: spec, scored outcome, telemetry, extras."""

    spec: RunSpec
    outcome: object  # MethodOutcome (kept loose to avoid an import cycle)
    telemetry: RunTelemetry
    extras: dict = field(default_factory=dict)


@dataclass
class RunJob:
    """One unit of queued work: a spec plus how to obtain its data.

    Attributes:
        spec: The hashable cell description.
        source: Source pool — a :class:`DatasetRef` (resolved in the
            worker via the benchmark cache), an in-memory dataset, or
            ``None``.
        target: Target pool (ref or dataset).
        ppa_config: Optional explicit tuner configuration.
    """

    spec: RunSpec
    source: DatasetRef | BenchmarkDataset | None
    target: DatasetRef | BenchmarkDataset
    ppa_config: PPATunerConfig | None = None


def _resolve(pool):
    return pool.resolve() if isinstance(pool, DatasetRef) else pool


def _execute_job(job: RunJob) -> RunRecord:
    """Top-level worker entry point (must stay picklable)."""
    source = _resolve(job.source)
    target = _resolve(job.target)
    return execute_spec(job.spec, source, target, job.ppa_config)


class ExperimentRunner:
    """Order-preserving fan-out of experiment cells.

    Args:
        workers: Process count (``None`` = ``PPATUNER_WORKERS``
            convention).  ``1`` executes inline, no pool.
        memo: Memo store for resumability (``None`` disables
            memoization entirely).
        resume: Serve completed specs from the memo store.
        force: Invalidate the jobs' memo entries before running
            (re-executes everything exactly once).
        progress: Optional callable fed one human-readable line per
            completed cell (e.g. ``print``).
        trace_dir: Record every cell's event stream to
            ``trace-<spec_hash>.jsonl`` under this directory (exported
            as ``PPATUNER_TRACE_DIR`` for the duration of each
            :meth:`run`, so pool workers inherit it).
    """

    def __init__(
        self,
        workers: int | None = None,
        memo: RunMemo | None = None,
        resume: bool = True,
        force: bool = False,
        progress: Callable[[str], None] | None = None,
        trace_dir: str | os.PathLike | None = None,
    ) -> None:
        self.workers = runner_workers(workers)
        self.memo = memo
        self.resume = resume
        self.force = force
        self.progress = progress
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        #: Every record this runner has produced, in completion order
        #: across calls (feeds suite-level telemetry tables).
        self.history: list[RunRecord] = []

    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[RunJob]) -> list[RunRecord]:
        """Execute every job; results in submission order.

        Duplicate specs in one submission are executed once and the
        record shared.
        """
        if self.trace_dir is None:
            return self._run(jobs)
        # Export the trace directory for the duration of the batch so
        # inline cells and forked pool workers alike pick it up.
        prev = os.environ.get("PPATUNER_TRACE_DIR")
        os.environ["PPATUNER_TRACE_DIR"] = self.trace_dir
        try:
            return self._run(jobs)
        finally:
            if prev is None:
                os.environ.pop("PPATUNER_TRACE_DIR", None)
            else:
                os.environ["PPATUNER_TRACE_DIR"] = prev

    def _run(self, jobs: Sequence[RunJob]) -> list[RunRecord]:
        jobs = list(jobs)
        if self.memo is not None and self.force:
            self.memo.invalidate(job.spec for job in jobs)
        records: list[RunRecord | None] = [None] * len(jobs)
        pending: list[int] = []
        done = 0
        for i, job in enumerate(jobs):
            cached = None
            if self.memo is not None and self.resume and not self.force:
                cached = self.memo.load(job.spec)
            if cached is not None:
                records[i] = cached
                done += 1
                self._emit(done, len(jobs), cached)
            else:
                pending.append(i)

        # Dedup identical specs so one execution serves every copy.
        first_of: dict[str, int] = {}
        to_run: list[int] = []
        for i in pending:
            key = jobs[i].spec.spec_hash()
            if key in first_of:
                continue
            first_of[key] = i
            to_run.append(i)

        if self.workers <= 1 or len(to_run) <= 1:
            fresh = {}
            for i in to_run:
                record = _execute_job(jobs[i])
                fresh[jobs[i].spec.spec_hash()] = record
                self._store(record)
                done += 1
                self._emit(done, len(jobs), record)
        else:
            fresh = self._run_pool(jobs, to_run, done, len(jobs))

        for i in pending:
            records[i] = fresh[jobs[i].spec.spec_hash()]
        assert all(r is not None for r in records)
        self.history.extend(records)  # type: ignore[arg-type]
        return records  # type: ignore[return-value]

    def _run_pool(
        self,
        jobs: Sequence[RunJob],
        to_run: list[int],
        done: int,
        total: int,
    ) -> dict[str, RunRecord]:
        fresh: dict[str, RunRecord] = {}
        workers = min(self.workers, len(to_run))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_job, jobs[i]): i for i in to_run
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for fut in finished:
                        record = fut.result()
                        i = futures[fut]
                        fresh[jobs[i].spec.spec_hash()] = record
                        self._store(record)
                        done += 1
                        self._emit(done, total, record)
        except Exception:
            log.warning(
                "process pool failed; finishing %d cell(s) serially",
                len(to_run) - len(fresh), exc_info=True,
            )
            for i in to_run:
                key = jobs[i].spec.spec_hash()
                if key in fresh:
                    continue
                record = _execute_job(jobs[i])
                fresh[key] = record
                self._store(record)
                done += 1
                self._emit(done, total, record)
        return fresh

    def map(
        self,
        fn: Callable,
        items: Sequence[object],
        workers: int | None = None,
    ) -> list[object]:
        """Generic order-preserving parallel map (no memoization).

        ``fn`` must be a picklable top-level callable.  Falls back to a
        serial loop for one worker, one item, or pool failure.
        """
        items = list(items)
        workers = min(
            self.workers if workers is None else runner_workers(workers),
            len(items),
        )
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        except Exception:
            log.warning(
                "process pool failed; mapping %d item(s) serially",
                len(items), exc_info=True,
            )
            return [fn(item) for item in items]

    # ------------------------------------------------------------------

    def _store(self, record: RunRecord) -> None:
        if self.memo is not None:
            self.memo.save(record)

    def _emit(self, done: int, total: int, record: RunRecord) -> None:
        if self.progress is None:
            return
        t = record.telemetry
        tag = "memo" if t.memoized else f"{t.wall_time:.1f}s"
        outcome = record.outcome
        self.progress(
            f"[{done}/{total}] {record.spec.label}: "
            f"hv={outcome.hv_error:.3f} adrs={outcome.adrs:.3f} "
            f"runs={t.runs} ({tag})"
        )


def format_telemetry_table(records: Sequence[RunRecord]) -> str:
    """Per-run telemetry table (wall time, tool runs, calibration,
    trace events)."""
    header = (
        f"{'cell':<44} {'runs':>5} {'wall':>8} {'src':>5} "
        f"{'fits':>5} {'incr':>5} {'reopt':>5} {'events':>6}"
    )
    lines = [header]
    total_wall = 0.0
    total_runs = 0
    total_events = 0
    memo_hits = 0
    for record in records:
        t = record.telemetry
        total_wall += t.wall_time
        total_runs += t.runs
        total_events += t.n_events
        memo_hits += int(t.memoized)
        calib = t.calibration
        src = "memo" if t.memoized else str(t.worker_pid)
        lines.append(
            f"{record.spec.label:<44} {t.runs:>5} "
            f"{t.wall_time:>7.1f}s {src:>5} "
            f"{calib.get('n_full_fits', 0):>5} "
            f"{calib.get('n_incremental', 0):>5} "
            f"{calib.get('n_reopts', 0):>5} "
            f"{t.n_events if t.n_events else '-':>6}"
        )
    lines.append(
        f"{'total':<44} {total_runs:>5} {total_wall:>7.1f}s "
        f"({memo_hits} memoized, {total_events} trace events, "
        f"pid {os.getpid()} is the parent)"
    )
    return "\n".join(lines)
