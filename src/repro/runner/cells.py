"""Cell executors: the single implementation behind serial *and*
parallel experiment runs.

Each function executes one :class:`~repro.runner.spec.RunSpec` in
isolation, deriving every random stream it consumes from the spec via
spawn-key :func:`~repro.runner.spec.derive_rng` — never from a shared
generator — so the output is bit-identical whether the cell runs inline,
in a worker process, or in any order relative to its siblings.

Shared-information streams are shared *by key*, not by sequence: all
methods of one objective space derive the same initial design from
``(seed, "init", space)``, and all cells of one scenario derive the same
source subset from ``(seed, "source", n_source)`` — exactly the paper's
"same starting information" protocol, without order coupling.

When ``PPATUNER_TRACE_DIR`` is set (the runner's ``trace_dir`` argument
exports it, and worker processes inherit it), every cell records its
tuning loop to ``trace-<spec_hash>.jsonl`` under that directory; the
trace path and event count surface in the cell's telemetry.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from ..obs.recorder import NULL_RECORDER, TraceRecorder
from ..obs.sinks import JsonlSink, trace_path_for
from .spec import RunSpec, derive_rng, derive_seed

__all__ = ["execute_spec"]


def _cell_recorder(spec: RunSpec):
    """Per-cell trace recorder (``PPATUNER_TRACE_DIR`` convention).

    Returns ``(recorder, trace_path)``; the null recorder and an empty
    path when tracing is disabled.
    """
    from .. import env

    trace_dir = env.trace_dir()
    if trace_dir is None:
        return NULL_RECORDER, ""
    path = trace_path_for(spec.spec_hash(), trace_dir)
    return TraceRecorder(sinks=[JsonlSink(path)]), str(path)


def _cell_oracle(spec: RunSpec, Y: np.ndarray):
    """Per-cell oracle, optionally fault-injected and resilient.

    The default is a bare :class:`~repro.core.PoolOracle` — zero added
    overhead, unchanged traces.  Two switches activate the reliability
    stack:

    - ``PPATUNER_FAULT_SEED`` (chaos testing): wrap the pool in a
      :class:`~repro.reliability.FaultInjectingOracle` whose plan is
      derived from the fault seed and the spec hash — every cell gets
      its own reproducible fault schedule — restricted to
      value-preserving transient kinds so memoized results stay valid
      and outcomes stay bit-identical to the fault-free run.
    - A ``fault_policy`` spec param (scenario/CLI plumbing): govern the
      :class:`~repro.reliability.ResilientOracle` with that policy
      instead of the zero-backoff default used for chaos runs.
    """
    from .. import env
    from ..core import PoolOracle

    policy = _spec_fault_policy(spec)
    chaos_seed = env.fault_seed()
    oracle = PoolOracle(Y)
    if chaos_seed is None and policy is None:
        return oracle
    from ..reliability import (
        TRANSIENT_KINDS,
        FaultInjectingOracle,
        FaultPlan,
        FaultPolicy,
        ResilientOracle,
    )

    if chaos_seed is not None:
        plan = FaultPlan.seeded(
            derive_seed(chaos_seed, "faults", spec.spec_hash()),
            oracle.n_candidates,
            rate=0.05,
            kinds=TRANSIENT_KINDS,
        )
        oracle = FaultInjectingOracle(oracle, plan, latency_s=0.001)
    if policy is None:
        policy = FaultPolicy(backoff_base=0.0)
    return ResilientOracle(
        oracle,
        policy=policy,
        seed=derive_seed(
            spec.seed, "resilience", spec.method, spec.repeat
        ),
    )


def _spec_fault_policy(spec: RunSpec):
    """Decode the optional ``fault_policy`` spec param (None = default)."""
    import json

    policy_raw = spec.param("fault_policy", None)
    if policy_raw is None:
        return None
    from ..reliability import FaultPolicy

    return FaultPolicy.from_json(json.loads(policy_raw))


def _attach_recorder(tuner, recorder) -> None:
    """Route a tuner's events into the cell trace, when it can emit
    them (baselines without a recorder attribute stay untraced)."""
    if recorder and hasattr(tuner, "recorder"):
        tuner.recorder = recorder


def _calibration_counters(tuner) -> dict[str, int]:
    """Aggregate CalibrationStats counters from a tuner, when present."""
    engine = getattr(tuner, "calibration_", None)
    stats = getattr(engine, "stats", None)
    if stats is None:
        return {}
    return {
        k: int(v) for k, v in dataclasses.asdict(stats).items()
    }


def _source_subset(spec: RunSpec, source):
    """The scenario-shared source subset (same for every cell)."""
    rng = derive_rng(spec.seed, "source", spec.n_source)
    idx = rng.choice(
        source.n, size=min(spec.n_source, source.n), replace=False
    )
    return idx


def _shared_init(spec: RunSpec, target) -> np.ndarray:
    """The per-objective-space shared initial design."""
    rng = derive_rng(spec.seed, "init", spec.objective_space)
    n_init = max(5, int(round(0.02 * target.n)))
    return rng.choice(target.n, size=n_init, replace=False)


def _method_config(spec: RunSpec, ppa_config):
    """Per-cell tuner config: explicit configs get a derived seed so
    repeats differ and no two cells share a stream."""
    if ppa_config is None:
        return None
    return dataclasses.replace(
        ppa_config,
        seed=derive_seed(
            spec.seed, "method", spec.objective_space, spec.method,
            spec.repeat,
        ),
    )


def _spec_pruning(spec: RunSpec, source, target):
    """The cell's optional knob-importance pruning (``prune_space``
    spec param).

    FIST-style: importances come from the *source* golden table (the
    prior design's full table — known before any target tool run) and
    restrict the shared knob columns both pools are sliced to.  The
    pruning seed derives from ``(seed, "prune")`` only, so every cell
    of one scenario sees the same knob subset (shared information by
    key, like the init design).

    Returns ``None`` when pruning is off.
    """
    import json

    raw = spec.param("prune_space", None)
    if raw is None:
        return None
    from ..ml.importance import prune_space

    settings = json.loads(raw)
    return prune_space(
        target.space, source.X, source.Y,
        seed=derive_seed(spec.seed, "prune"),
        **settings,
    )


def _run_scenario_cell(spec: RunSpec, source, target, ppa_config,
                       recorder=NULL_RECORDER):
    """One (method, objective-space) cell of a paper table."""
    from ..experiments.scenarios import (
        PAPER_BUDGET_FRACTIONS,
        evaluate_outcome,
        make_method,
    )

    names = spec.objectives
    src_idx = _source_subset(spec, source)
    X_source = source.X[src_idx]
    Y_source = source.objectives(names)[src_idx]
    X_pool = target.X
    pruned = _spec_pruning(spec, source, target)
    if pruned is not None:
        X_pool = pruned.slice(X_pool)
        X_source = pruned.slice(X_source)
    init = _shared_init(spec, target)
    n_init = len(init)
    budget_frac = PAPER_BUDGET_FRACTIONS.get(spec.method, {}).get(
        spec.budget_key, 0.08
    )
    budget = max(n_init + 5, int(round(budget_frac * target.n)))
    method_seed = derive_seed(
        spec.seed, "method", spec.objective_space, spec.method, spec.repeat
    )
    tuner = make_method(
        spec.method, budget, target.n, method_seed,
        ppa_config=_method_config(spec, ppa_config),
        fault_policy=_spec_fault_policy(spec),
    )
    _attach_recorder(tuner, recorder)
    oracle = _cell_oracle(spec, target.objectives(names))
    result = tuner.tune(
        X_pool, oracle,
        sources=[(X_source, Y_source)],
        init_indices=init.copy(),
    )
    outcome = evaluate_outcome(
        spec.method, spec.objective_space, result, target, names
    )
    outcome.repeat = spec.repeat
    extras = {}
    if pruned is not None:
        extras["pruned_knobs"] = list(pruned.dropped)
    return outcome, extras, _calibration_counters(tuner)


def _run_tune_cell(spec: RunSpec, source, target, ppa_config,
                   recorder=NULL_RECORDER):
    """A single configured PPATuner run (ablation sweeps, `_util`)."""
    from ..core import PPATuner, PPATunerConfig
    from ..experiments.scenarios import evaluate_outcome

    names = spec.objectives
    kwargs = {}
    if source is not None and spec.n_source > 0:
        src_idx = _source_subset(spec, source)
        kwargs = {
            "sources": [(
                source.X[src_idx],
                source.objectives(names)[src_idx],
            )],
        }
    config = ppa_config or PPATunerConfig(seed=spec.seed)
    tuner = PPATuner(config)
    _attach_recorder(tuner, recorder)
    oracle = _cell_oracle(spec, target.objectives(names))
    result = tuner.tune(target.X, oracle, **kwargs)
    outcome = evaluate_outcome(
        spec.method, spec.objective_space, result, target, names
    )
    outcome.repeat = spec.repeat
    return outcome, {}, _calibration_counters(tuner)


def _run_scenario_three_cell(spec: RunSpec, source, target, ppa_config,
                             recorder=NULL_RECORDER):
    """One mixed-archive variant (Scenario Three).

    Every variant derives the *same* archives from the spec seed, so the
    comparison isolates the archive mix, not the draw.
    """
    import json

    from ..core import PPATuner, PPATunerConfig
    from ..experiments.scenarios import evaluate_outcome

    names = spec.objectives
    rng = derive_rng(spec.seed, "scenario3", "archives")
    idx = rng.choice(
        source.n, min(2 * spec.n_source, source.n), replace=False
    )
    half = len(idx) // 2
    Xs = source.X[idx[:half]]
    Ys = source.objectives(names)[idx[:half]]
    Xs_decoy = source.X[idx[half:]]
    Ys_decoy = source.objectives(names)[idx[half:]][
        rng.permutation(len(idx) - half)
    ]

    variant_kwargs: dict[str, dict] = {
        "related-only": {"sources": [(Xs, Ys)]},
        "multi-source": {
            "sources": [(Xs, Ys), (Xs_decoy, Ys_decoy)],
        },
        "decoy-only": {"sources": [(Xs_decoy, Ys_decoy)]},
        "no-transfer": {},
    }
    if spec.method not in variant_kwargs:
        raise ValueError(f"unknown scenario-three variant {spec.method!r}")
    kwargs = variant_kwargs[spec.method]

    max_iterations = int(json.loads(spec.param("max_iterations", "50")))
    config = ppa_config or PPATunerConfig(
        max_iterations=max_iterations, seed=spec.seed,
    )
    tuner = PPATuner(config)
    _attach_recorder(tuner, recorder)
    oracle = _cell_oracle(spec, target.objectives(names))
    result = tuner.tune(target.X, oracle, **kwargs)

    lambdas: list[list[float]] = []
    for model in tuner.models_:
        if hasattr(model, "lambdas"):
            try:
                lambdas.append([float(v) for v in model.lambdas])
            except RuntimeError:
                pass
        elif hasattr(model, "lam") and kwargs:
            try:
                lambdas.append([float(model.lam)])
            except RuntimeError:
                pass
    outcome = evaluate_outcome(
        spec.method, spec.objective_space, result, target, names
    )
    outcome.repeat = spec.repeat
    return outcome, {"lambdas": lambdas}, _calibration_counters(tuner)


def _run_convergence_cell(spec: RunSpec, source, target, ppa_config,
                          recorder=NULL_RECORDER):
    """One method's anytime convergence trace."""
    import json

    from ..experiments.convergence import convergence_curve
    from ..experiments.scenarios import (
        PAPER_BUDGET_FRACTIONS,
        evaluate_outcome,
        make_method,
    )

    names = spec.objectives
    src_idx = _source_subset(spec, source)
    init = _shared_init(spec, target)
    budget_frac = PAPER_BUDGET_FRACTIONS.get(spec.method, {}).get(
        spec.budget_key, 0.1
    )
    min_budget = int(json.loads(spec.param("min_budget", "20")))
    budget = max(min_budget, int(budget_frac * target.n))
    method_seed = derive_seed(
        spec.seed, "method", spec.objective_space, spec.method, spec.repeat
    )
    tuner = make_method(
        spec.method, budget, target.n, method_seed,
        ppa_config=_method_config(spec, ppa_config),
        fault_policy=_spec_fault_policy(spec),
    )
    _attach_recorder(tuner, recorder)
    oracle = _cell_oracle(spec, target.objectives(names))
    result = tuner.tune(
        target.X, oracle,
        sources=[(
            source.X[src_idx],
            source.objectives(names)[src_idx],
        )],
        init_indices=init.copy(),
    )
    curve = convergence_curve(spec.method, result, target, names)
    outcome = evaluate_outcome(
        spec.method, spec.objective_space, result, target, names
    )
    outcome.repeat = spec.repeat
    extras = {
        "curve_runs": [int(r) for r in curve.runs],
        "curve_hv_error": [float(e) for e in curve.hv_error],
    }
    return outcome, extras, _calibration_counters(tuner)


_EXECUTORS = {
    "scenario": _run_scenario_cell,
    "tune": _run_tune_cell,
    "scenario_three": _run_scenario_three_cell,
    "convergence": _run_convergence_cell,
}


def execute_spec(spec: RunSpec, source, target, ppa_config=None):
    """Execute one cell and return its :class:`RunRecord`.

    Args:
        spec: The cell to run.
        source: Source pool (dataset or ``None``), already resolved.
        target: Target pool, already resolved.
        ppa_config: Optional explicit PPATuner configuration.

    Raises:
        ValueError: For an unknown ``spec.kind``.
    """
    from .runner import RunRecord, RunTelemetry

    try:
        executor = _EXECUTORS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown spec kind {spec.kind!r}") from None
    recorder, trace_path = _cell_recorder(spec)
    start = time.perf_counter()
    try:
        outcome, extras, calibration = executor(
            spec, source, target, ppa_config, recorder
        )
    finally:
        recorder.close()
    wall = time.perf_counter() - start
    telemetry = RunTelemetry(
        wall_time=wall,
        runs=int(outcome.runs),
        worker_pid=os.getpid(),
        calibration=calibration,
        memoized=False,
        trace_path=trace_path,
        n_events=getattr(recorder, "n_emitted", 0),
    )
    return RunRecord(
        spec=spec, outcome=outcome, telemetry=telemetry, extras=extras
    )
