"""Hashable run specifications and order-independent seed derivation.

A :class:`RunSpec` names one independent experiment cell — a (scenario,
objective-space, method, seed, repeat, config-fingerprint) tuple — in a
way that is (a) **hashable**, so completed cells can be memoized to disk
and skipped on resume, and (b) **self-seeding**, so a cell draws exactly
the same random numbers no matter which worker executes it or in which
order the queue is drained.

Seed derivation replaces the shared ``np.random.default_rng(seed)``
sequence the serial scenario loop used to thread through every cell
(whose draws coupled each method's initialization to loop order) with
``np.random.SeedSequence`` *spawn-key* derivation: every random stream a
cell consumes is derived as ``SeedSequence(base_seed, spawn_key=(...))``
where the spawn key is built from stable string tokens (objective-space
name, method name, repeat index).  Two cells that share a stream by
design — e.g. the per-objective-space shared initial design — derive it
from the same key and therefore draw identical values; everything else
is independent.  Note this intentionally changes trajectories relative
to the old order-coupled serial loop for the same base seed (see
DESIGN.md §6).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from ..bench.dataset import BenchmarkDataset
from ..core.config import PPATunerConfig

__all__ = [
    "DatasetRef",
    "RunSpec",
    "config_fingerprint",
    "dataset_id",
    "derive_rng",
    "derive_seed",
    "make_params",
    "stable_token",
]


def stable_token(value: object) -> int:
    """A stable 64-bit integer for a spawn-key component.

    Integers pass through; everything else hashes its ``str`` form via
    SHA-256 (never the process-salted builtin ``hash``), so derivations
    are reproducible across processes and interpreter restarts.
    """
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value) & 0xFFFFFFFFFFFFFFFF
    digest = hashlib.sha256(str(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(base_seed: int, *streams: object) -> np.random.Generator:
    """An order-independent RNG for one named random stream.

    ``derive_rng(seed, "init", space)`` yields the same generator no
    matter when or where it is called — the spawn key depends only on
    the tokens, never on how many streams were derived before it.
    """
    key = tuple(stable_token(s) for s in streams)
    return np.random.default_rng(
        np.random.SeedSequence(base_seed, spawn_key=key)
    )


def derive_seed(base_seed: int, *streams: object) -> int:
    """A derived integer seed (for APIs that take one, e.g. tuners)."""
    key = tuple(stable_token(s) for s in streams)
    seq = np.random.SeedSequence(base_seed, spawn_key=key)
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def config_fingerprint(config: PPATunerConfig | None) -> str:
    """Canonical fingerprint of a tuner configuration (memo-key part).

    ``None`` (method defaults) fingerprints as the empty string; any
    explicit config hashes its canonical sorted-key JSON, with arrays
    listed element-wise.
    """
    if config is None:
        return ""
    def _canon(value: object) -> object:
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, dict):
            return {k: _canon(v) for k, v in sorted(value.items())}
        return value
    payload = {k: _canon(v) for k, v in asdict(config).items()}
    # ``warm_start`` postdates the memo format; its default spelling is
    # dropped so explicit configs that never touch it keep their
    # pre-existing fingerprints (and memo entries).
    if payload.get("warm_start") == "random":
        payload.pop("warm_start")
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def dataset_id(dataset: BenchmarkDataset) -> str:
    """Content identity of an in-memory dataset (memo-key part).

    Named cache-backed datasets are identified by their
    :class:`DatasetRef` label instead; this fingerprint covers ad-hoc
    pools (tests, subsamples built by hand).
    """
    digest = hashlib.sha256()
    digest.update(dataset.name.encode("utf-8"))
    digest.update(np.ascontiguousarray(dataset.X).tobytes())
    digest.update(np.ascontiguousarray(dataset.Y).tobytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class DatasetRef:
    """A benchmark pool named by its cache coordinates.

    Workers resolve the ref through the (concurrency-safe) benchmark
    cache instead of receiving pickled arrays, keeping fan-out cheap:
    the first process to need a table builds it under the store's
    advisory lock, everyone else loads the winner's file.

    Attributes:
        name: Benchmark name (``source1`` ... ``target2``).
        n_points: Pool-size override (None = the paper's size).
        subsample: Optional post-generation subsample size.
        subsample_seed: Seed for the subsample draw.
    """

    name: str
    n_points: int | None = None
    subsample: int | None = None
    subsample_seed: int = 0

    def resolve(self) -> BenchmarkDataset:
        """Load (or build) the referenced dataset."""
        from ..bench.generate import generate_benchmark

        dataset = generate_benchmark(self.name, n_points=self.n_points)
        if self.subsample is not None:
            dataset = dataset.subsample(
                self.subsample, seed=self.subsample_seed
            )
        return dataset

    @property
    def label(self) -> str:
        """Stable identity string (used in spec hashes)."""
        parts = [self.name]
        if self.n_points is not None:
            parts.append(f"n{self.n_points}")
        if self.subsample is not None:
            parts.append(f"s{self.subsample}@{self.subsample_seed}")
        return "-".join(parts)


@dataclass(frozen=True)
class RunSpec:
    """One hashable cell of the experiment work queue.

    The spec is pure metadata: enough to key memoization and to derive
    every random stream the cell consumes.  How the cell's datasets are
    obtained (cache ref vs. pickled in-memory pool) lives in the
    :class:`~repro.runner.runner.RunJob` that carries the spec.

    Attributes:
        kind: Cell family — ``"scenario"`` (one table cell),
            ``"tune"`` (a single configured PPATuner run),
            ``"scenario_three"`` (one mixed-archive variant) or
            ``"convergence"`` (one anytime-curve trace).
        scenario: Scenario/suite label (``"scenario_one"`` ...).
        method: Method or variant name.
        objective_space: Objective-space label (``"power-delay"``).
        objectives: Objective names, in order.
        budget_key: Paper budget-fraction key (``"target1"``/…).
        n_source: Source points made available to transfer methods.
        seed: Base seed all streams are derived from.
        repeat: Repeat index (distinct derived seeds per repeat).
        source_id: Identity of the source pool ("" = none).
        target_id: Identity of the target pool.
        config_fingerprint: Tuner-config fingerprint ("" = defaults).
        params: Extra canonicalized options as sorted (key, value)
            string pairs — kept in the hash so e.g. two convergence
            budgets never collide.
    """

    kind: str
    scenario: str
    method: str
    objective_space: str
    objectives: tuple[str, ...]
    budget_key: str = ""
    n_source: int = 0
    seed: int = 0
    repeat: int = 0
    source_id: str = ""
    target_id: str = ""
    config_fingerprint: str = ""
    params: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def to_json(self) -> dict[str, object]:
        """Canonical JSON-serializable form (drives the hash)."""
        out: dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [
                    list(v) if isinstance(v, tuple) else v for v in value
                ]
            out[f.name] = value
        return out

    def spec_hash(self) -> str:
        """Stable content hash — the memoization key."""
        text = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]

    def param(self, key: str, default: str | None = None) -> str | None:
        """Look up one extra option."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    @property
    def label(self) -> str:
        """Short human-readable label for progress lines."""
        bits = [self.scenario, self.objective_space, self.method]
        if self.repeat:
            bits.append(f"r{self.repeat}")
        return " ".join(bits)


def make_params(**options: object) -> tuple[tuple[str, str], ...]:
    """Canonicalize keyword options into sorted string pairs."""
    return tuple(
        (k, json.dumps(v, sort_keys=True, default=str))
        for k, v in sorted(options.items())
        if v is not None
    )
