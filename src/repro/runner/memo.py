"""Resumable result memoization for experiment cells.

Completed :class:`~repro.experiments.scenarios.MethodOutcome`s are
persisted to disk keyed by spec hash, following the BenchmarkStore's
crash-safety playbook (same-directory temp file + fsync + ``os.replace``
atomic writes, per-entry ``fcntl`` advisory locks, quarantine-free
self-healing: a torn or stale entry is deleted and simply re-executed).
A killed multi-run invocation therefore skips every finished cell on
restart, and ``--force`` invalidates.

Entry layout (one ``.npz`` per cell under the memo root)::

    .cache/runs/
        <scenario>-<hash>.npz      arrays + a JSON metadata blob
        <scenario>-<hash>.npz.lock advisory lock files

The JSON blob records the memo format version, the full spec (verified
on load — a hash collision or renamed file can never serve the wrong
cell), scalar outcome fields, iteration history, telemetry and extras;
sibling arrays carry the index/objective matrices bit-exactly.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..core.result import IterationRecord, TuningResult
from .spec import RunSpec

try:  # advisory locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

log = logging.getLogger(__name__)

#: Memo-format version; bump when the serialized layout changes.
MEMO_VERSION = 1

#: Prefix of in-flight atomic-write temp files.
_TMP_PREFIX = ".tmp-"

#: Exceptions a damaged ``.npz`` can raise on load.
_LOAD_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    KeyError,
    EOFError,
    OSError,
    json.JSONDecodeError,
)

_ARRAY_KEYS = ("pareto_indices", "pareto_points", "evaluated_indices")


def default_memo_dir() -> Path:
    """Directory for memoized run results.

    Honours ``PPATUNER_RUN_CACHE``; defaults to ``<repo>/.cache/runs``
    (see :func:`repro.env.run_cache_dir`).
    """
    from .. import env

    return env.run_cache_dir()


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class RunMemo:
    """Disk memoization of completed run records, keyed by spec hash.

    All methods are safe to call concurrently from multiple processes
    sharing the same memo directory.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_memo_dir()

    # ------------------------------------------------------------------
    # keys and locking

    def entry_name(self, spec: RunSpec) -> str:
        """Memo file name for one spec."""
        return f"{spec.scenario}-{spec.spec_hash()}.npz"

    def path_for(self, spec: RunSpec) -> Path:
        """Memo file path for one spec."""
        return self.root / self.entry_name(spec)

    @contextlib.contextmanager
    def lock(self, spec: RunSpec) -> Iterator[None]:
        """Exclusive cross-process lock for one entry (no-op without
        ``fcntl``)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        lock_path = self.root / f"{self.entry_name(spec)}.lock"
        with lock_path.open("a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # save / load

    def save(self, record) -> Path:
        """Atomically persist one completed :class:`RunRecord`."""
        from .runner import RunRecord  # local: avoid import cycle

        assert isinstance(record, RunRecord)
        outcome = record.outcome
        result = outcome.result
        meta = {
            "version": MEMO_VERSION,
            "spec": record.spec.to_json(),
            "method": outcome.method,
            "objective_space": outcome.objective_space,
            "hv_error": outcome.hv_error,
            "adrs": outcome.adrs,
            "runs": outcome.runs,
            "n_evaluations": int(result.n_evaluations),
            "n_iterations": int(result.n_iterations),
            "stop_reason": result.stop_reason,
            "n_failed_evaluations": int(result.n_failed_evaluations),
            "history": [h.to_json() for h in result.history],
            "telemetry": {
                "wall_time": record.telemetry.wall_time,
                "runs": record.telemetry.runs,
                "worker_pid": record.telemetry.worker_pid,
                "calibration": dict(record.telemetry.calibration),
                "trace_path": record.telemetry.trace_path,
                "n_events": record.telemetry.n_events,
            },
            "extras": record.extras,
        }
        arrays = {
            "pareto_indices": np.asarray(result.pareto_indices, dtype=int),
            "pareto_points": np.asarray(
                result.pareto_points, dtype=float
            ),
            "evaluated_indices": np.asarray(
                result.evaluated_indices, dtype=int
            ),
            "quarantined_indices": np.asarray(
                result.quarantined_indices, dtype=int
            ),
            "meta": np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.path_for(record.spec)
        with self.lock(record.spec):
            fd, tmp = tempfile.mkstemp(
                prefix=_TMP_PREFIX, suffix=".npz", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez_compressed(fh, **arrays)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, target)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        _fsync_dir(self.root)
        return target

    def load(self, spec: RunSpec):
        """Load one memoized record, or ``None``.

        A torn, garbage, version-skewed or wrong-spec file is deleted
        (self-healing) and ``None`` returned so the caller re-executes;
        corruption never raises.
        """
        from ..experiments.scenarios import MethodOutcome
        from .runner import RunRecord, RunTelemetry

        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            if not zipfile.is_zipfile(path):
                raise zipfile.BadZipFile("not a zip archive")
            with np.load(path, allow_pickle=False) as data:
                missing = set(_ARRAY_KEYS + ("meta",)) - set(data.files)
                if missing:
                    raise KeyError(f"missing arrays {sorted(missing)}")
                arrays = {key: data[key] for key in _ARRAY_KEYS}
                # Optional array: absent in pre-reliability entries,
                # which stay loadable (same MEMO_VERSION).
                arrays["quarantined_indices"] = (
                    data["quarantined_indices"]
                    if "quarantined_indices" in data.files
                    else np.empty(0, dtype=int)
                )
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            if meta.get("version") != MEMO_VERSION:
                raise ValueError(
                    f"memo version {meta.get('version')} != {MEMO_VERSION}"
                )
            if meta.get("spec") != spec.to_json():
                raise ValueError("memo entry does not match spec")
        except _LOAD_ERRORS as exc:
            log.warning(
                "memoized run %s is unusable (%s: %s); re-executing",
                path, type(exc).__name__, exc,
            )
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        result = TuningResult(
            pareto_indices=arrays["pareto_indices"],
            pareto_points=arrays["pareto_points"],
            n_evaluations=int(meta["n_evaluations"]),
            n_iterations=int(meta["n_iterations"]),
            history=[
                IterationRecord.from_json(h) for h in meta["history"]
            ],
            evaluated_indices=arrays["evaluated_indices"],
            stop_reason=meta["stop_reason"],
            quarantined_indices=arrays["quarantined_indices"],
            n_failed_evaluations=int(
                meta.get("n_failed_evaluations", 0)
            ),
        )
        outcome = MethodOutcome(
            method=meta["method"],
            objective_space=meta["objective_space"],
            hv_error=float(meta["hv_error"]),
            adrs=float(meta["adrs"]),
            runs=int(meta["runs"]),
            result=result,
            repeat=int(meta["spec"].get("repeat", 0)),
        )
        telem = meta.get("telemetry", {})
        telemetry = RunTelemetry(
            wall_time=float(telem.get("wall_time", 0.0)),
            runs=int(telem.get("runs", outcome.runs)),
            worker_pid=int(telem.get("worker_pid", 0)),
            calibration=dict(telem.get("calibration", {})),
            memoized=True,
            trace_path=str(telem.get("trace_path", "")),
            n_events=int(telem.get("n_events", 0)),
        )
        return RunRecord(
            spec=spec,
            outcome=outcome,
            telemetry=telemetry,
            extras=dict(meta.get("extras", {})),
        )

    # ------------------------------------------------------------------
    # maintenance

    def invalidate(self, specs: Iterable[RunSpec]) -> int:
        """Drop the memo entries for ``specs`` (``--force``).

        Returns:
            The number of entries removed.
        """
        removed = 0
        for spec in specs:
            path = self.path_for(spec)
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
            with contextlib.suppress(OSError):
                (self.root / f"{path.name}.lock").unlink()
        return removed

    def clear(self) -> int:
        """Remove every memo artifact.

        Returns:
            The number of files removed.
        """
        if not self.root.is_dir():
            return 0
        count = 0
        for pattern in ("*.npz", "*.npz.lock", f"{_TMP_PREFIX}*"):
            for path in self.root.glob(pattern):
                with contextlib.suppress(OSError):
                    path.unlink()
                    count += 1
        return count

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1 for p in self.root.glob("*.npz")
            if not p.name.startswith(_TMP_PREFIX)
        )
