"""Parallel experiment runner: hashable run specs, process-pool
fan-out, resumable memoization, per-run telemetry."""

from .memo import MEMO_VERSION, RunMemo, default_memo_dir
from .runner import (
    ExperimentRunner,
    RunJob,
    RunRecord,
    RunTelemetry,
    format_telemetry_table,
    runner_workers,
)
from .spec import (
    DatasetRef,
    RunSpec,
    config_fingerprint,
    dataset_id,
    derive_rng,
    derive_seed,
    make_params,
    stable_token,
)

__all__ = [
    "DatasetRef",
    "ExperimentRunner",
    "MEMO_VERSION",
    "RunJob",
    "RunMemo",
    "RunRecord",
    "RunSpec",
    "RunTelemetry",
    "config_fingerprint",
    "dataset_id",
    "default_memo_dir",
    "derive_rng",
    "derive_seed",
    "format_telemetry_table",
    "make_params",
    "runner_workers",
    "stable_token",
]
