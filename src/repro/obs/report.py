"""Human-readable trace inspection (the ``repro trace`` commands).

``summarize_trace`` condenses one run's event stream into a screenful:
run header, event census, calibration/selection behavior, oracle
latency, and how the uncertainty rectangles shrank.  ``diff_traces``
aligns two runs iteration-by-iteration and reports where — if anywhere —
they diverge, which is how "why did the re-run converge differently?"
gets answered without reading raw JSONL.
"""

from __future__ import annotations

import math
from collections import Counter as TallyCounter
from pathlib import Path
from typing import Iterable

from .events import (
    CalibrationDone,
    CircuitStateChange,
    EvaluationRetry,
    PointQuarantined,
    SelectionMade,
    ToolEvaluation,
    TraceEvent,
)
from .replay import TraceReplay, replay_trace
from .sinks import read_trace

__all__ = ["diff_traces", "format_events", "summarize_trace"]


def _load(source: str | Path | Iterable[TraceEvent]) -> list[TraceEvent]:
    if isinstance(source, (str, Path)):
        return read_trace(source)
    return list(source)


def format_events(
    source: str | Path | Iterable[TraceEvent],
    event_type: str | None = None,
    iteration: int | None = None,
    limit: int | None = None,
) -> str:
    """Render events one per line (``repro trace show``).

    Args:
        source: Trace path or events.
        event_type: Keep only this ``type`` tag.
        iteration: Keep only events of this iteration (events without
            an iteration field are kept unless ``event_type`` filters
            them).
        limit: Keep only the last ``limit`` surviving events.
    """
    events = _load(source)
    if event_type is not None:
        events = [e for e in events if e.type == event_type]
    if iteration is not None:
        events = [
            e for e in events
            if getattr(e, "iteration", iteration) == iteration
        ]
    if limit is not None and limit >= 0:
        events = events[len(events) - limit:]
    lines = []
    for e in events:
        payload = e.to_json()
        payload.pop("type")
        body = " ".join(f"{k}={_compact(v)}" for k, v in payload.items())
        lines.append(f"{e.type:<18} {body}")
    return "\n".join(lines)


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, list):
        if len(value) > 8:
            head = ",".join(_compact(v) for v in value[:8])
            return f"[{head},…+{len(value) - 8}]"
        return "[" + ",".join(_compact(v) for v in value) + "]"
    return str(value)


def _fmt_diam(value: float) -> str:
    if math.isnan(value):
        return "-"
    if math.isinf(value):
        return "inf"
    return f"{value:.4g}"


def summarize_trace(source: str | Path | TraceReplay) -> str:
    """One-screen summary of a recorded run (``repro trace summary``)."""
    replay = (
        source if isinstance(source, TraceReplay) else replay_trace(source)
    )
    events = replay.events
    lines: list[str] = []

    start, end = replay.run_start, replay.run_end
    if start is not None:
        lines.append(
            f"run: {start.n_candidates} candidates x "
            f"{start.n_objectives} objectives, seed={start.seed}, "
            f"{start.n_init} init evals, {start.n_sources} source "
            f"archive(s)"
        )
    if end is not None:
        lines.append(
            f"finished: {end.stop_reason} after {end.n_iterations} "
            f"iterations, {end.n_evaluations} loop tool runs, "
            f"{len(end.pareto_indices)} Pareto configurations, "
            f"{end.seconds:.2f}s"
        )
    else:
        lines.append(
            f"TRUNCATED: no run_end — {len(replay.history)} "
            f"iteration(s) recovered"
        )

    census = TallyCounter(e.type for e in events)
    lines.append("events: " + "  ".join(
        f"{t}={n}" for t, n in sorted(census.items())
    ))

    calib = [e for e in events if isinstance(e, CalibrationDone)]
    if calib:
        full = sum(1 for e in calib if e.path == "full")
        incr = sum(1 for e in calib if e.path == "incremental")
        fallbacks = sum(e.n_fallbacks for e in calib)
        reopts = sum(1 for e in calib if e.reopt)
        total_s = sum(e.seconds for e in calib)
        lines.append(
            f"calibration: {full} full, {incr} incremental, "
            f"{fallbacks} fallback(s), {reopts} re-optimization(s), "
            f"{total_s:.2f}s total"
        )

    evals = [e for e in events if isinstance(e, ToolEvaluation)]
    if evals:
        fresh = [e for e in evals if not e.cached]
        lat = sorted(e.seconds for e in fresh) or [0.0]
        lines.append(
            f"oracle: {len(fresh)} tool runs ({len(evals) - len(fresh)} "
            f"cached), latency p50={lat[len(lat) // 2]:.6f}s "
            f"max={lat[-1]:.6f}s"
        )

    if replay.history:
        first = replay.history[0]
        last = replay.history[-1]
        lines.append(
            f"rectangles: max diameter "
            f"{_fmt_diam(first.max_diameter)} -> "
            f"{_fmt_diam(last.max_diameter)}; undecided "
            f"{first.n_undecided} -> {last.n_undecided}; pareto "
            f"{first.n_pareto} -> {last.n_pareto}; dropped "
            f"{first.n_dropped} -> {last.n_dropped}"
        )
        sel = [e for e in events if isinstance(e, SelectionMade)]
        n_sel = sum(len(e.selected) for e in sel)
        lines.append(
            f"selection: {n_sel} candidate(s) sent to the tool over "
            f"{len(sel)} decision round(s)"
        )
        if replay.batch_selections:
            sizes = [len(e.selected) for e in replay.batch_selections]
            lines.append(
                f"batching: {len(sizes)} q-point round(s), batch size "
                f"max={max(sizes)} mean={sum(sizes) / len(sizes):.1f}"
            )
        if replay.pool_refinements:
            final = replay.pool_refinements[-1]
            lines.append(
                f"pool refinement: {len(replay.pool_refinements)} "
                f"round(s), +{replay.n_pool_grown} candidate(s) "
                f"(pool -> {final.n_pool}, zoom={final.zoom:g})"
            )

    retries = [e for e in events if isinstance(e, EvaluationRetry)]
    breaker = [e for e in events if isinstance(e, CircuitStateChange)]
    quarantined = [e for e in events if isinstance(e, PointQuarantined)]
    if retries or breaker or quarantined:
        wait = sum(e.wait_s for e in retries)
        trips = sum(1 for e in breaker if e.new_state == "open")
        lines.append(
            f"reliability: {len(retries)} retry(ies) "
            f"({wait:.3f}s backoff), {trips} breaker trip(s), "
            f"{len(quarantined)} point(s) quarantined"
            + (
                " [" + ",".join(str(e.index) for e in quarantined) + "]"
                if quarantined else ""
            )
        )
    return "\n".join(lines)


def diff_traces(
    a: str | Path | TraceReplay, b: str | Path | TraceReplay
) -> str:
    """Iteration-aligned comparison of two runs (``repro trace diff``).

    Reports the first iteration where the two selection sequences
    diverge and tabulates per-iteration counters side by side
    (``A|B`` columns; ``*`` marks rows that differ).
    """
    ra = a if isinstance(a, TraceReplay) else replay_trace(a)
    rb = b if isinstance(b, TraceReplay) else replay_trace(b)
    lines: list[str] = []

    div = None
    for i, (ha, hb) in enumerate(zip(ra.history, rb.history)):
        if list(ha.selected) != list(hb.selected):
            div = i
            break
    if div is not None:
        lines.append(
            f"selection diverges at iteration {div}: "
            f"A={list(ra.history[div].selected)} "
            f"B={list(rb.history[div].selected)}"
        )
    elif len(ra.history) != len(rb.history):
        lines.append(
            f"selections identical over the common prefix; iteration "
            f"counts differ ({len(ra.history)} vs {len(rb.history)})"
        )
    else:
        lines.append("selections identical")

    pa = set(int(i) for i in ra.pareto_indices)
    pb = set(int(i) for i in rb.pareto_indices)
    if pa == pb:
        lines.append(f"final Pareto sets identical ({len(pa)} indices)")
    else:
        lines.append(
            f"final Pareto sets differ: only-A={sorted(pa - pb)} "
            f"only-B={sorted(pb - pa)} shared={len(pa & pb)}"
        )

    header = (
        f"{'iter':>4} {'und A|B':>11} {'par A|B':>11} "
        f"{'drop A|B':>11} {'runs A|B':>11} {'maxdiam A|B':>19}"
    )
    lines.append(header)
    n = max(len(ra.history), len(rb.history))
    for i in range(n):
        ha = ra.history[i] if i < len(ra.history) else None
        hb = rb.history[i] if i < len(rb.history) else None

        def pair(fa, fb, fmt=str) -> str:
            left = fmt(fa) if fa is not None else "-"
            right = fmt(fb) if fb is not None else "-"
            return f"{left}|{right}"

        row = (
            f"{i:>4} "
            f"{pair(ha and ha.n_undecided, hb and hb.n_undecided):>11} "
            f"{pair(ha and ha.n_pareto, hb and hb.n_pareto):>11} "
            f"{pair(ha and ha.n_dropped, hb and hb.n_dropped):>11} "
            f"{pair(ha and ha.n_evaluations, hb and hb.n_evaluations):>11} "
            f"{pair(ha and ha.max_diameter, hb and hb.max_diameter, _fmt_diam):>19}"
        )
        differ = (
            ha is None or hb is None
            or (ha.n_undecided, ha.n_pareto, ha.n_dropped,
                ha.n_evaluations, list(ha.selected))
            != (hb.n_undecided, hb.n_pareto, hb.n_dropped,
                hb.n_evaluations, list(hb.selected))
        )
        lines.append(row + (" *" if differ else ""))
    return "\n".join(lines)
