"""Trace recorders: the single emission point of the tuning loop.

Instrumented code holds a recorder and calls ``emit`` with typed events.
Two implementations:

- :class:`TraceRecorder` fans each event out to its sinks and keeps the
  companion :class:`~repro.obs.metrics.MetricsRegistry` up to date.
- :class:`NullRecorder` is the disabled path: falsy, emits to nowhere.
  Instrumentation sites are written ``if recorder: recorder.emit(...)``
  so the disabled path never constructs an event object — tracing off
  costs one truthiness check per site.

``NULL_RECORDER`` is the shared singleton; anything accepting an
optional recorder defaults to it.
"""

from __future__ import annotations

from typing import Iterable

from .events import (
    CalibrationDone,
    CircuitStateChange,
    EvaluationRetry,
    PointQuarantined,
    ToolEvaluation,
    TraceEvent,
)
from .metrics import MetricsRegistry
from .sinks import MemorySink, Sink

__all__ = ["NULL_RECORDER", "NullRecorder", "TraceRecorder"]


class NullRecorder:
    """The disabled recorder: falsy, drops everything.

    All instances behave identically; use the module-level
    ``NULL_RECORDER`` singleton.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def emit(self, event: TraceEvent) -> None:
        """Drop the event."""

    def flush(self) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""


#: Shared disabled recorder.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Deliver typed events to pluggable sinks, with live metrics.

    Example:
        >>> rec = TraceRecorder()                    # in-memory only
        >>> tuner = PPATuner(config, recorder=rec)   # doctest: +SKIP
        >>> rec.events[-1].type                      # doctest: +SKIP
        'run_end'

    Args:
        sinks: Event sinks; defaults to a single :class:`MemorySink`.
        metrics: Companion registry; created when omitted.
    """

    enabled = True

    def __init__(
        self,
        sinks: Iterable[Sink] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sinks: list[Sink] = (
            list(sinks) if sinks is not None else [MemorySink()]
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Total events emitted through this recorder.
        self.n_emitted = 0

    def __bool__(self) -> bool:
        return True

    @property
    def events(self) -> list[TraceEvent]:
        """Events retained by the first attached :class:`MemorySink`.

        Raises:
            RuntimeError: If no memory sink is attached.
        """
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        raise RuntimeError("no MemorySink attached to this recorder")

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to every sink and update metrics."""
        self.n_emitted += 1
        self.metrics.counter(f"events.{event.type}").inc()
        if isinstance(event, ToolEvaluation):
            self.metrics.histogram("oracle_seconds").observe(event.seconds)
            if event.cached:
                self.metrics.counter("oracle.cached_hits").inc()
            else:
                self.metrics.counter("oracle.tool_runs").inc()
        elif isinstance(event, CalibrationDone):
            self.metrics.histogram("calibration_seconds").observe(
                event.seconds
            )
            if event.n_fallbacks:
                self.metrics.counter("calibration.fallbacks").inc(
                    event.n_fallbacks
                )
            if event.reopt:
                self.metrics.counter("calibration.reopts").inc()
        elif isinstance(event, EvaluationRetry):
            self.metrics.counter("reliability.retries").inc()
            self.metrics.histogram("retry_wait_seconds").observe(
                event.wait_s
            )
        elif isinstance(event, CircuitStateChange):
            self.metrics.counter(
                f"reliability.breaker.{event.new_state}"
            ).inc()
        elif isinstance(event, PointQuarantined):
            self.metrics.counter("reliability.quarantined").inc()
        for sink in self.sinks:
            sink.write(event)

    def flush(self) -> None:
        """Flush every sink."""
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Close every sink."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
