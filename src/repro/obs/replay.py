"""Trace replay: reconstruct a tuning run from its event stream.

A recorded trace contains everything ``TuningResult`` derives from the
live loop — per-iteration bookkeeping (``IterationEnd`` is
field-for-field an :class:`~repro.core.result.IterationRecord`), the
final Pareto set and the loop-evaluation set (``RunEnd``), and every
observed QoR vector (``ToolEvaluation``).  Replaying therefore rebuilds
the run's history and result *exactly*, without touching the tool — the
post-hoc ADRS / hyper-volume-error convergence curves that previously
required a re-run come straight from the file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..core.result import IterationRecord, TuningResult
from .events import (
    BatchSelected,
    IterationEnd,
    PoolRefined,
    RunEnd,
    RunStart,
    ToolEvaluation,
    TraceEvent,
)
from .sinks import read_trace

__all__ = [
    "TraceReplay",
    "convergence_from_trace",
    "records_equal",
    "replay_trace",
]


def records_equal(
    a: Sequence[IterationRecord], b: Sequence[IterationRecord]
) -> bool:
    """Field-exact history comparison, NaN-aware.

    Plain ``==`` on :class:`IterationRecord` fails whenever
    ``max_diameter`` is NaN (the first iterations before any bounded
    region exist); this helper treats NaN as equal to NaN.
    """
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        same_diam = ra.max_diameter == rb.max_diameter or (
            math.isnan(ra.max_diameter) and math.isnan(rb.max_diameter)
        )
        if not (
            ra.iteration == rb.iteration
            and ra.n_undecided == rb.n_undecided
            and ra.n_pareto == rb.n_pareto
            and ra.n_dropped == rb.n_dropped
            and ra.n_evaluations == rb.n_evaluations
            and same_diam
            and list(ra.selected) == list(rb.selected)
        ):
            return False
    return True


@dataclass
class TraceReplay:
    """A run reconstructed from its trace.

    Attributes:
        events: The full event stream, in emission order.
        run_start: The run's opening event (``None`` for a truncated
            trace).
        run_end: The closing event (``None`` when the run was killed
            mid-loop — history up to the kill point is still replayed).
        history: Reconstructed per-iteration records.
        evaluations: Candidate index → last observed QoR vector, from
            the ``ToolEvaluation`` stream.
        batch_selections: Every ``BatchSelected`` event (q > 1 runs),
            in emission order.
        pool_refinements: Every ``PoolRefined`` event, in emission
            order — their ``n_new`` sum is the run's pool growth.
    """

    events: list[TraceEvent]
    run_start: RunStart | None
    run_end: RunEnd | None
    history: list[IterationRecord]
    evaluations: dict[int, np.ndarray] = field(default_factory=dict)
    batch_selections: list[BatchSelected] = field(default_factory=list)
    pool_refinements: list[PoolRefined] = field(default_factory=list)

    @property
    def n_pool_grown(self) -> int:
        """Candidates added by refinement over the replayed run."""
        return sum(ev.n_new for ev in self.pool_refinements)

    @property
    def pareto_indices(self) -> np.ndarray:
        """Final reported Pareto indices (empty for a truncated trace)."""
        if self.run_end is None:
            return np.empty(0, dtype=int)
        return np.asarray(self.run_end.pareto_indices, dtype=int)

    def to_result(self) -> TuningResult:
        """Rebuild the run's :class:`TuningResult`.

        Pareto points are recovered from the recorded tool evaluations
        (the final verification pass evaluates — and therefore traces —
        every reported index).

        Raises:
            ValueError: If the trace has no ``RunEnd`` event or a
                Pareto index was never evaluated on record.
        """
        if self.run_end is None:
            raise ValueError(
                "trace is truncated (no run_end); cannot rebuild the "
                "final result — history is still available"
            )
        end = self.run_end
        idx = self.pareto_indices
        missing = [int(i) for i in idx if int(i) not in self.evaluations]
        if missing:
            raise ValueError(
                f"pareto indices {missing} have no recorded evaluation"
            )
        m = (
            self.run_start.n_objectives
            if self.run_start is not None
            else (len(next(iter(self.evaluations.values())))
                  if self.evaluations else 0)
        )
        points = (
            np.vstack([self.evaluations[int(i)] for i in idx])
            if len(idx) else np.empty((0, m))
        )
        return TuningResult(
            pareto_indices=idx,
            pareto_points=points,
            n_evaluations=end.n_evaluations,
            n_iterations=end.n_iterations,
            history=list(self.history),
            evaluated_indices=np.asarray(
                end.evaluated_indices, dtype=int
            ),
            stop_reason=end.stop_reason,
            quarantined_indices=np.asarray(
                end.quarantined_indices, dtype=int
            ),
            n_failed_evaluations=end.n_failed_evaluations,
        )


def replay_trace(
    source: str | Path | Iterable[TraceEvent],
) -> TraceReplay:
    """Replay a trace file (or event sequence) into a :class:`TraceReplay`.

    Only the *last* run in the stream is replayed when a file holds
    several (e.g. a shared path reused across runs): a fresh
    ``RunStart`` resets the reconstruction.
    """
    if isinstance(source, (str, Path)):
        events = read_trace(source)
    else:
        events = list(source)

    run_start: RunStart | None = None
    run_end: RunEnd | None = None
    history: list[IterationRecord] = []
    evaluations: dict[int, np.ndarray] = {}
    batch_selections: list[BatchSelected] = []
    pool_refinements: list[PoolRefined] = []
    for event in events:
        if isinstance(event, RunStart):
            run_start = event
            run_end = None
            history = []
            evaluations = {}
            batch_selections = []
            pool_refinements = []
        elif isinstance(event, IterationEnd):
            history.append(IterationRecord(
                iteration=event.iteration,
                n_undecided=event.n_undecided,
                n_pareto=event.n_pareto,
                n_dropped=event.n_dropped,
                n_evaluations=event.n_evaluations,
                max_diameter=event.max_diameter,
                selected=list(event.selected),
            ))
        elif isinstance(event, ToolEvaluation):
            evaluations[event.index] = np.asarray(
                event.values, dtype=float
            )
        elif isinstance(event, BatchSelected):
            batch_selections.append(event)
        elif isinstance(event, PoolRefined):
            pool_refinements.append(event)
        elif isinstance(event, RunEnd):
            run_end = event
    return TraceReplay(
        events=events,
        run_start=run_start,
        run_end=run_end,
        history=history,
        evaluations=evaluations,
        batch_selections=batch_selections,
        pool_refinements=pool_refinements,
    )


def convergence_from_trace(
    source: str | Path | TraceReplay,
    dataset,
    names: tuple[str, ...],
    method: str = "replay",
):
    """Post-hoc anytime convergence curve from a recorded trace.

    Reuses the experiments' curve machinery on the replayed result, so
    the ADRS/HV-error trajectory of an old run is recomputable from its
    JSONL file alone — no tool re-runs.

    Args:
        source: Trace path or an already-built :class:`TraceReplay`.
        dataset: Benchmark dataset supplying golden values.
        names: Objective names.
        method: Curve label.

    Returns:
        A :class:`~repro.experiments.convergence.ConvergenceCurve`.
    """
    from ..experiments.convergence import convergence_curve

    replay = (
        source if isinstance(source, TraceReplay) else replay_trace(source)
    )
    return convergence_curve(method, replay.to_result(), dataset, names)
