"""Structured observability for the tuning loop.

The subsystem has four small parts:

- :mod:`~repro.obs.events` — the typed event taxonomy of Algorithm 1.
- :mod:`~repro.obs.recorder` — :class:`TraceRecorder` (fans events out
  to sinks + metrics) and the allocation-free :class:`NullRecorder`.
- :mod:`~repro.obs.sinks` — in-memory ring buffer and atomic-append
  JSONL sinks, plus the per-``spec_hash`` trace-path convention.
- :mod:`~repro.obs.replay` / :mod:`~repro.obs.report` — reconstruct a
  recorded run (identical ``IterationRecord`` history, final Pareto
  set, post-hoc convergence curves) and render summaries/diffs.

Quickstart::

    from repro import PPATuner, PPATunerConfig, TraceRecorder
    from repro.obs import JsonlSink, replay_trace

    rec = TraceRecorder(sinks=[JsonlSink("run.jsonl")])
    PPATuner(PPATunerConfig(), recorder=rec).tune(X, oracle)
    rec.close()
    replay = replay_trace("run.jsonl")   # == the live run's history
"""

from .events import (
    EVENT_TYPES,
    BatchSelected,
    CalibrationDone,
    CircuitStateChange,
    DecisionSummary,
    EvaluationRetry,
    IterationEnd,
    IterationStart,
    PointQuarantined,
    PoolRefined,
    RunEnd,
    RunStart,
    SelectionMade,
    ToolEvaluation,
    TraceEvent,
    event_from_json,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from .replay import (
    TraceReplay,
    convergence_from_trace,
    records_equal,
    replay_trace,
)
from .report import diff_traces, format_events, summarize_trace
from .sinks import (
    JsonlSink,
    MemorySink,
    Sink,
    default_trace_dir,
    read_trace,
    trace_path_for,
)

__all__ = [
    "EVENT_TYPES",
    "NULL_RECORDER",
    "BatchSelected",
    "CalibrationDone",
    "CircuitStateChange",
    "Counter",
    "DecisionSummary",
    "EvaluationRetry",
    "Histogram",
    "IterationEnd",
    "IterationStart",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullRecorder",
    "PointQuarantined",
    "PoolRefined",
    "RunEnd",
    "RunStart",
    "SelectionMade",
    "Sink",
    "ToolEvaluation",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplay",
    "convergence_from_trace",
    "default_trace_dir",
    "diff_traces",
    "event_from_json",
    "format_events",
    "read_trace",
    "records_equal",
    "replay_trace",
    "summarize_trace",
    "trace_path_for",
]
