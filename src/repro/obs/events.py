"""Typed trace events emitted by the tuning loop.

Every event is a frozen dataclass with JSON-serializable fields (ints,
floats, strings, bools, and flat lists thereof).  The event taxonomy
mirrors Algorithm 1:

- :class:`RunStart` / :class:`RunEnd` bracket one ``PPATuner.tune``
  call; ``RunEnd`` carries everything replay needs that is not
  per-iteration (final Pareto indices, the loop-evaluation set, the
  stop reason).
- :class:`IterationStart` → :class:`CalibrationDone` →
  :class:`DecisionSummary` → :class:`SelectionMade` →
  :class:`IterationEnd` trace one loop iteration; ``IterationEnd``
  carries exactly the fields of
  :class:`~repro.core.result.IterationRecord`, so a recorded run can be
  replayed into an identical history without re-running the tool.
- :class:`ToolEvaluation` is emitted by the oracles themselves (one per
  ``evaluate`` call, cached hits included) with the observed QoR vector
  and the oracle latency.

Serialization uses Python's :mod:`json` defaults, which round-trip
``NaN``/``Infinity`` literals — diameters of unbounded regions and the
pre-prediction ``max_diameter`` rely on this.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

__all__ = [
    "EVENT_TYPES",
    "BatchSelected",
    "CalibrationDone",
    "CircuitStateChange",
    "DecisionSummary",
    "EvaluationRetry",
    "IterationEnd",
    "IterationStart",
    "PointQuarantined",
    "PoolRefined",
    "RunEnd",
    "RunStart",
    "SelectionMade",
    "ToolEvaluation",
    "TraceEvent",
    "event_from_json",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class; concrete events set the ``type`` class attribute."""

    type = "event"

    def to_json(self) -> dict:
        """Flat JSON-serializable dict, ``type`` tag included."""
        out: dict = {"type": self.type}
        out.update(asdict(self))
        return out


@dataclass(frozen=True)
class RunStart(TraceEvent):
    """One ``tune`` call begins.

    Attributes:
        n_candidates: Target-pool size.
        n_objectives: QoR metric count.
        seed: Config seed.
        n_init: Initial target evaluations (Algorithm 1 line 1).
        n_sources: Source archives made available for transfer.
        delta: Absolute δ vector derived from the initialization data.
    """

    type = "run_start"

    n_candidates: int
    n_objectives: int
    seed: int
    n_init: int
    n_sources: int
    delta: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class IterationStart(TraceEvent):
    """Loop iteration begins (counts *before* this iteration acts)."""

    type = "iteration_start"

    iteration: int
    n_undecided: int
    n_pareto: int
    n_dropped: int


@dataclass(frozen=True)
class CalibrationDone(TraceEvent):
    """All surrogates are calibrated for this iteration.

    Attributes:
        iteration: Loop iteration.
        path: ``"full"`` (exact refits), ``"incremental"`` (rank-1
            border updates) or ``"noop"`` (no new evidence).
        n_models: Surrogates calibrated (one per QoR metric).
        n_new: Evaluations absorbed since the previous calibration.
        n_fallbacks: Incremental updates that fell back to an exact
            refactorization this call.
        reopt: Whether hyperparameters were re-optimized.
        seconds: Wall-clock time of the calibration call.
    """

    type = "calibration_done"

    iteration: int
    path: str
    n_models: int
    n_new: int
    n_fallbacks: int
    reopt: bool
    seconds: float


@dataclass(frozen=True)
class DecisionSummary(TraceEvent):
    """One decision-making pass (Eq. (11)-(12)) finished.

    Counts are post-pass totals over the pool; ``newly_*`` are this
    pass's contributions.
    """

    type = "decision_summary"

    iteration: int
    n_live: int
    n_undecided: int
    n_pareto: int
    n_dropped: int
    newly_dropped: int
    newly_pareto: int


@dataclass(frozen=True)
class SelectionMade(TraceEvent):
    """Selection rule (Eq. (13)) picked the next tool batch.

    Attributes:
        iteration: Loop iteration.
        selected: Chosen candidate indices, longest diameter first.
        diameters: Uncertainty-rectangle diameters of the chosen
            candidates at selection time (``Infinity`` for a candidate
            that has never been predicted).
    """

    type = "selection_made"

    iteration: int
    selected: list[int] = field(default_factory=list)
    diameters: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class BatchSelected(TraceEvent):
    """Batched selection (``q>1``) picked one diverse tool batch.

    Emitted *in addition to* the per-pick :class:`SelectionMade`
    events — consumers that only understand serial traces keep working,
    while batch-aware tooling can recover the greedy order and the
    diversity penalties actually applied.

    Attributes:
        iteration: Loop iteration.
        selected: Chosen candidate indices in greedy pick order.
        diameters: True (pre-fantasy) rectangle diameters of the picks.
        scores: Penalized scores at pick time (``diameters[0] ==
            scores[0]`` — the first pick is never penalized).
    """

    type = "batch_selected"

    iteration: int
    selected: list[int] = field(default_factory=list)
    diameters: list[float] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class PoolRefined(TraceEvent):
    """Adaptive pool refinement appended zoomed LHS candidates.

    Attributes:
        iteration: Loop iteration the refinement ran before.
        n_new: Candidates appended this round.
        n_pool: Pool size *after* the append.
        n_anchors: Live rectangles the zoom boxes were centred on.
        zoom: Zoom half-width (fraction of the parameter-space span).
    """

    type = "pool_refined"

    iteration: int
    n_new: int
    n_pool: int
    n_anchors: int
    zoom: float


@dataclass(frozen=True)
class ToolEvaluation(TraceEvent):
    """One oracle ``evaluate`` call.

    Attributes:
        index: Pool candidate index.
        values: Observed QoR vector.
        seconds: Oracle latency for this call.
        cached: Whether the value was served from the oracle's cache
            (not a fresh tool run).
        oracle: Oracle kind (``"pool"`` or ``"flow"``).
    """

    type = "tool_evaluation"

    index: int
    seconds: float
    cached: bool
    oracle: str
    values: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class IterationEnd(TraceEvent):
    """Iteration bookkeeping — field-for-field an
    :class:`~repro.core.result.IterationRecord`."""

    type = "iteration_end"

    iteration: int
    n_undecided: int
    n_pareto: int
    n_dropped: int
    n_evaluations: int
    max_diameter: float
    selected: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class EvaluationRetry(TraceEvent):
    """A transient evaluation failure is about to be retried.

    Emitted by :class:`~repro.reliability.ResilientOracle` before it
    sleeps the backoff; the deterministic wait is part of the trace so
    replayed runs can audit the full retry schedule.

    Attributes:
        index: Pool candidate index that failed.
        attempt: Failed attempts so far (1 = first retry upcoming).
        wait_s: Deterministic backoff about to be slept.
        error: Exception class name of the transient failure.
    """

    type = "evaluation_retry"

    index: int
    attempt: int
    wait_s: float
    error: str = ""


@dataclass(frozen=True)
class CircuitStateChange(TraceEvent):
    """The circuit breaker changed state.

    Attributes:
        old_state: State before (``closed``/``open``/``half_open``).
        new_state: State after.
        consecutive_failures: Consecutive permanent failures at the
            moment of transition.
        index: Candidate involved, or -1 when not tied to one (e.g.
            the half-open -> closed transition on a probe success).
    """

    type = "circuit_state_change"

    old_state: str
    new_state: str
    consecutive_failures: int
    index: int = -1


@dataclass(frozen=True)
class PointQuarantined(TraceEvent):
    """The loop permanently removed a candidate after evaluation failure.

    A quarantined point is treated as dropped (Eq. (11) semantics) and
    excluded from the reported Pareto set; see DESIGN.md §10.

    Attributes:
        index: Quarantined pool candidate index.
        iteration: Loop iteration at quarantine time (-1 during the
            initialization or final-verification passes).
        attempts: Evaluation attempts consumed before giving up.
        error: Exception class name of the permanent failure.
    """

    type = "point_quarantined"

    index: int
    iteration: int
    attempts: int = 0
    error: str = ""


@dataclass(frozen=True)
class RunEnd(TraceEvent):
    """One ``tune`` call finished.

    Attributes:
        stop_reason: Why the loop ended.
        n_iterations: Loop iterations executed.
        n_evaluations: Loop tool runs (the paper's "Runs"; the final
            verification pass is excluded, as in ``TuningResult``).
        pareto_indices: Final reported Pareto set.
        evaluated_indices: Every pool index sampled during the loop
            (ascending — matches ``TuningResult.evaluated_indices``).
        seconds: Wall-clock time of the whole ``tune`` call.
        quarantined_indices: Candidates removed after permanent
            evaluation failure (ascending; empty on healthy runs).
        n_failed_evaluations: Permanent evaluation failures over the
            whole run (quarantines plus breaker fast-fails).
    """

    type = "run_end"

    stop_reason: str
    n_iterations: int
    n_evaluations: int
    seconds: float
    pareto_indices: list[int] = field(default_factory=list)
    evaluated_indices: list[int] = field(default_factory=list)
    quarantined_indices: list[int] = field(default_factory=list)
    n_failed_evaluations: int = 0


#: Registry of concrete event types by their ``type`` tag.
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.type: cls
    for cls in (
        RunStart,
        IterationStart,
        CalibrationDone,
        DecisionSummary,
        SelectionMade,
        BatchSelected,
        PoolRefined,
        ToolEvaluation,
        IterationEnd,
        EvaluationRetry,
        CircuitStateChange,
        PointQuarantined,
        RunEnd,
    )
}


def event_from_json(payload: dict) -> TraceEvent:
    """Reconstruct an event from its :meth:`TraceEvent.to_json` dict.

    Unknown keys are ignored (forward compatibility: a newer writer may
    add fields); unknown types raise.

    Raises:
        ValueError: If the ``type`` tag is missing or unregistered.
    """
    tag = payload.get("type")
    cls = EVENT_TYPES.get(tag)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown trace event type {tag!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in names})
