"""Event sinks: where the recorder delivers trace events.

Two concrete sinks cover the in-process and on-disk cases:

- :class:`MemorySink` — a bounded ring buffer (``collections.deque``),
  for tests, live inspection and the replay utilities.
- :class:`JsonlSink` — one JSON object per line, written with a single
  ``write`` call per event to an ``O_APPEND`` stream and flushed
  immediately, so concurrent writers never interleave within a line and
  a killed run leaves at most one torn *trailing* line (which the
  reader skips).  The runner convention is one file per
  ``RunSpec.spec_hash`` under the trace directory (see
  :func:`trace_path_for`).

Anything with ``write(event)`` / ``flush()`` / ``close()`` is a valid
sink (see :class:`Sink`).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Protocol, runtime_checkable

from .events import TraceEvent, event_from_json

__all__ = [
    "JsonlSink",
    "MemorySink",
    "Sink",
    "default_trace_dir",
    "read_trace",
    "trace_path_for",
]


@runtime_checkable
class Sink(Protocol):
    """Contract every event sink satisfies."""

    def write(self, event: TraceEvent) -> None:
        """Deliver one event."""
        ...

    def flush(self) -> None:
        """Push buffered events to durable storage (no-op if unbuffered)."""
        ...

    def close(self) -> None:
        """Release resources; the sink accepts no further events."""
        ...


class MemorySink:
    """Bounded in-memory ring buffer of the most recent events.

    Attributes:
        capacity: Maximum retained events (older ones are evicted).
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Total events ever written (evictions included).
        self.n_written = 0

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._events)

    def write(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.n_written += 1

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Append-only JSON-lines file sink.

    The file is opened lazily (a recorder wired up but never emitted to
    creates nothing) in append mode, each event is serialized to one
    line and written with a single ``write`` + ``flush``.

    Args:
        path: Target file; parent directories are created.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def write(self, event: TraceEvent) -> None:
        fh = self._handle()
        fh.write(json.dumps(event.to_json(), sort_keys=True) + "\n")
        fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def default_trace_dir() -> Path:
    """Trace directory: ``PPATUNER_TRACE_DIR`` or ``<repo>/.cache/traces``."""
    from .. import env

    return env.default_trace_dir()


def trace_path_for(
    spec_hash: str, trace_dir: str | Path | None = None
) -> Path:
    """Canonical trace-file path for one run (one file per spec hash)."""
    root = Path(trace_dir) if trace_dir is not None else default_trace_dir()
    return root / f"trace-{spec_hash}.jsonl"


def read_trace(source: str | Path | Iterable[str]) -> list[TraceEvent]:
    """Load events from a JSONL trace file (or iterable of lines).

    A torn trailing line (killed writer) is skipped; a corrupt line
    anywhere else raises, since it means the file was damaged rather
    than interrupted.

    Raises:
        ValueError: On a malformed non-trailing line or an unknown
            event type.
    """
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    events: list[TraceEvent] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn trailing line from a killed writer
            raise ValueError(f"corrupt trace line {i + 1}") from None
        events.append(event_from_json(payload))
    return events
