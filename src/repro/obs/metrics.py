"""Lightweight in-process counters and histograms.

A :class:`MetricsRegistry` is the cheap aggregate companion to the
event stream: the recorder bumps counters and histograms as events pass
through, so a run's health (tool latency distribution, calibration
fallbacks, events per type) is readable without scanning the trace.

Histograms keep running moments plus fixed log2 buckets — enough for a
latency profile at a few hundred bytes, no per-sample storage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing counter."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


#: Histogram bucket boundaries: powers of two from 1 µs to ~64 s.
_BUCKET_LO_EXP = -20  # 2**-20 s ≈ 0.95 µs
_BUCKET_HI_EXP = 6    # 2**6 s = 64 s


@dataclass
class Histogram:
    """Running moments + fixed log2 buckets of observed values.

    Attributes:
        count: Observations so far.
        total: Sum of observations.
        min: Smallest observation (``inf`` when empty).
        max: Largest observation (``-inf`` when empty).
        buckets: Cumulative-style bucket counts keyed by upper-bound
            exponent (``value <= 2**exp``); out-of-range values land in
            the edge buckets.
    """

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            exp = _BUCKET_LO_EXP
        else:
            exp = min(
                _BUCKET_HI_EXP,
                max(_BUCKET_LO_EXP, math.ceil(math.log2(value))),
            )
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        """Mean observation (NaN when empty)."""
        return self.total / self.count if self.count else math.nan


class MetricsRegistry:
    """Named counters and histograms with lazy creation.

    Example:
        >>> metrics = MetricsRegistry()
        >>> metrics.counter("events.run_start").inc()
        >>> metrics.histogram("oracle_seconds").observe(0.004)
        >>> metrics.snapshot()["counters"]["events.run_start"]
        1
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram()
            return h

    def snapshot(self) -> dict:
        """Plain-dict view: ``{"counters": {...}, "histograms": {...}}``."""
        return {
            "counters": {
                k: c.value for k, c in sorted(self._counters.items())
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean if h.count else None,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def format(self) -> str:
        """Human-readable two-column dump of every metric."""
        lines = []
        for name, c in sorted(self._counters.items()):
            lines.append(f"{name:<36} {c.value}")
        for name, h in sorted(self._histograms.items()):
            if h.count:
                lines.append(
                    f"{name:<36} n={h.count} mean={h.mean:.6f}s "
                    f"min={h.min:.6f}s max={h.max:.6f}s"
                )
            else:
                lines.append(f"{name:<36} n=0")
        return "\n".join(lines)
