"""Random-search tuner (sanity-floor baseline, not in the paper's tables)."""

from __future__ import annotations

import numpy as np

from ..core.result import TuningResult
from .base import Oracle, PoolTuner


class RandomSearchTuner(PoolTuner):
    """Evaluate a uniform random subset of the pool."""

    name = "Random"

    def __init__(self, budget: int = 70, seed: int = 0) -> None:
        """Create the tuner.

        Args:
            budget: Tool runs to spend.
            seed: RNG seed.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self.seed = seed

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Evaluate ``budget`` random candidates (sources are ignored)."""
        rng = np.random.default_rng(self.seed)
        n = len(np.atleast_2d(X_pool))
        k = min(self.budget, n)
        if init_indices is not None:
            init = self._validate_init_indices(n, init_indices)
            rest = np.setdiff1d(np.arange(n), init)
            extra = rng.choice(
                rest, size=max(k - len(init), 0), replace=False
            )
            chosen = np.concatenate([init, extra])[:k]
        else:
            chosen = rng.choice(n, size=k, replace=False)
        Y = np.vstack([oracle.evaluate(int(i)) for i in chosen])
        return self._result_from_evaluated(oracle, chosen, Y, 1, "budget")
