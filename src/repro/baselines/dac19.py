"""DAC'19 baseline: recommender-system tuning via matrix completion.

Kwon, Ziegler, Carloni, "A learning-based recommender system for
autotuning design flows of industrial high-performance processors"
(DAC 2019).  Tool tuning is cast as collaborative filtering: a sparse
(configuration x metric) rating matrix completed by a low-rank latent-
factor model; each round recommends the configurations with the best
predicted ratings, evaluates them, and refines the factorization.  Its
rounds-of-recommendations protocol consumes more tool runs than the
surrogate methods — matching its higher "Runs" column in the paper.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TuningResult
from ..ml.factorization import FeatureALS
from .base import Oracle, PoolTuner


class Dac19Recommender(PoolTuner):
    """Latent-factor recommender over the candidate pool."""

    name = "DAC'19"

    def __init__(
        self,
        budget: int = 130,
        n_init: int = 20,
        batch_size: int = 8,
        rank: int = 3,
        reg: float = 0.1,
        novelty_distance: float = 1.0,
        seed: int = 0,
    ) -> None:
        """Create the tuner.

        Args:
            budget: Maximum tool runs.
            n_init: Random initial evaluations.
            batch_size: Recommendations evaluated per round.
            rank: Latent dimensionality of the factorization.
            reg: Ridge regularization.
            novelty_distance: Minimum one-hot-feature distance between
                items recommended in the same batch.
            seed: RNG seed.
        """
        if budget < 2:
            raise ValueError("budget must be >= 2")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.budget = budget
        self.n_init = n_init
        self.batch_size = batch_size
        self.rank = rank
        self.reg = reg
        self.novelty_distance = novelty_distance
        self.seed = seed

    @staticmethod
    def _one_hot_bins(Xn: np.ndarray, n_bins: int = 2) -> np.ndarray:
        """Bin-and-one-hot encoding (plus bias column).

        The original DAC'19 system is a collaborative-filtering
        recommender over discrete parameter *settings*, not a regressor
        over continuous features; binning reproduces that granularity.
        """
        n, d = Xn.shape
        bins = np.clip((Xn * n_bins).astype(int), 0, n_bins - 1)
        out = np.zeros((n, d * n_bins + 1))
        cols = np.arange(d) * n_bins + bins
        rows = np.repeat(np.arange(n), d)
        out[rows, cols.ravel()] = 1.0
        out[:, -1] = 1.0
        return out

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Run recommendation rounds until the budget is exhausted.

        When source-task data is supplied it is treated as the
        recommender's archive (the original system recommends flows for
        new designs from past tapeout records): archived ratings join
        the observed matrix, so early recommendations carry the source
        design's preferences — cheap knowledge reuse, with the
        cross-design bias that implies.
        """
        rng = np.random.default_rng(self.seed)
        Xn = self._one_hot_bins(self._normalize(X_pool))
        n = len(Xn)
        m = oracle.n_objectives

        X_source, Y_source = self._stack_sources(sources)
        if X_source is not None:
            Xs = self._one_hot_bins(self._normalize(X_source))
            Ys = np.atleast_2d(np.asarray(Y_source, dtype=float))
            X_all = np.vstack([Xn, Xs])
        else:
            Ys = np.empty((0, m))
            X_all = Xn

        init = self._initial_indices(n, init_indices, self.n_init, rng)
        evaluated = list(int(i) for i in init)
        Y = np.vstack([oracle.evaluate(i) for i in evaluated])

        iteration = 0
        while oracle.n_evaluations < min(self.budget, n):
            # Observed entries: every metric of every evaluated config,
            # plus the archived source records (rows beyond the pool).
            row_ids = np.concatenate([
                np.asarray(evaluated, dtype=int),
                n + np.arange(len(Ys), dtype=int),
            ])
            Y_obs = np.vstack([Y, Ys]) if len(Ys) else Y
            rows = np.repeat(np.arange(len(row_ids)), m)
            cols = np.tile(np.arange(m), len(row_ids))
            # Normalize ratings per metric so no objective dominates the
            # least-squares fit.
            lo = Y_obs.min(axis=0)
            span = np.where(
                np.ptp(Y_obs, axis=0) > 0, np.ptp(Y_obs, axis=0), 1.0
            )
            ratings = ((Y_obs - lo) / span)[rows, cols]
            model = FeatureALS(
                rank=self.rank, reg=self.reg,
                seed=self.seed + iteration,
            )
            obs = np.column_stack([row_ids[rows], cols])
            model.fit(X_all, obs, ratings)

            pred = model.predict_all(Xn)
            mask = np.ones(n, dtype=bool)
            mask[evaluated] = False
            cand = np.nonzero(mask)[0]
            if len(cand) == 0:
                break
            # Recommend by predicted rating (sum of normalized metrics),
            # the way a recommender ranks items by one quality score,
            # with a novelty constraint: a batch avoids near-duplicate
            # items (standard recommender diversification).
            ranked = cand[np.argsort(pred[cand].sum(axis=1))]
            batch: list[int] = []
            for idx in ranked:
                if len(batch) >= self.batch_size:
                    break
                if batch:
                    dmin = np.min(np.linalg.norm(
                        Xn[batch] - Xn[idx], axis=1
                    ))
                    if dmin < self.novelty_distance:
                        continue
                batch.append(int(idx))
            for pick in batch:
                Y = np.vstack([Y, oracle.evaluate(int(pick))])
                evaluated.append(int(pick))
                if oracle.n_evaluations >= min(self.budget, n):
                    break
            iteration += 1

        return self._result_from_evaluated(
            oracle, np.array(evaluated), Y, iteration, "budget"
        )
