"""Common interface for the reimplemented baseline tuners.

All four prior-art methods (TCAD'19, MLCAD'19, DAC'19, ASPDAC'20) are
pool-based single-task tuners: they consume an evaluation budget over the
target pool and report the non-dominated subset of what they evaluated.
None of them uses source-task data — that contrast is the paper's point —
but the interface accepts it so the experiment runner can call every tuner
uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.oracle import Oracle
from ..core.result import TuningResult
from ..pareto.dominance import pareto_indices


class PoolTuner(ABC):
    """Abstract pool-based tuner."""

    #: Human-readable method name (used in reports).
    name: str = "base"

    @abstractmethod
    def tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        init_indices: np.ndarray | None = None,
    ) -> TuningResult:
        """Run the tuner over the candidate pool.

        Args:
            X_pool: ``(n, d)`` raw candidate features.
            oracle: Evaluation oracle aligned with the pool.
            X_source: Historical features (ignored by non-transfer
                methods).
            Y_source: Historical objectives.
            init_indices: Optional fixed initial evaluations.

        Returns:
            A :class:`TuningResult`.
        """

    @staticmethod
    def _normalize(X: np.ndarray) -> np.ndarray:
        """Min-max normalize features to the unit cube (degenerate
        columns map to 0.5)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        lo, hi = X.min(axis=0), X.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        out = (X - lo) / span
        return np.where(hi > lo, out, 0.5)

    @staticmethod
    def _result_from_evaluated(
        oracle: Oracle,
        evaluated: np.ndarray,
        y_evaluated: np.ndarray,
        n_iterations: int,
        stop_reason: str,
    ) -> TuningResult:
        """Standard baseline epilogue: non-dominated evaluated points."""
        evaluated = np.asarray(evaluated, dtype=int)
        nd_rows = pareto_indices(y_evaluated)
        return TuningResult(
            pareto_indices=evaluated[nd_rows],
            pareto_points=y_evaluated[nd_rows],
            n_evaluations=oracle.n_evaluations,
            n_iterations=n_iterations,
            evaluated_indices=evaluated,
            stop_reason=stop_reason,
        )

    @staticmethod
    def _initial_indices(
        n_pool: int,
        init_indices: np.ndarray | None,
        n_init: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Resolve the initial design (explicit or random)."""
        if init_indices is not None:
            return np.asarray(init_indices, dtype=int)
        n_init = min(max(n_init, 2), n_pool)
        return rng.choice(n_pool, size=n_init, replace=False)
