"""Common interface for the reimplemented baseline tuners.

All prior-art methods (TCAD'19, MLCAD'19, DAC'19, ASPDAC'20) are
pool-based single-task tuners: they consume an evaluation budget over the
target pool and report the non-dominated subset of what they evaluated.
Most of them ignore source-task data — that contrast is the paper's point
— but the interface accepts it so the experiment runner can call every
tuner uniformly.

Transfer data arrives through the unified ``sources=[(X, y), ...]``
keyword (the same shape :meth:`repro.gp.TransferGP.fit` takes); the old
positional ``X_source``/``Y_source`` pair still works but emits a
:class:`DeprecationWarning`.  Subclasses implement :meth:`PoolTuner._tune`
and never see the legacy spelling.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod

import numpy as np

from ..core.oracle import Oracle
from ..core.result import TuningResult
from ..pareto.dominance import pareto_indices


class PoolTuner(ABC):
    """Abstract pool-based tuner (satisfies the
    :class:`~repro.core.Tuner` protocol)."""

    #: Human-readable method name (used in reports).
    name: str = "base"

    def tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        X_source: np.ndarray | None = None,
        Y_source: np.ndarray | None = None,
        init_indices: np.ndarray | None = None,
        *,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> TuningResult:
        """Run the tuner over the candidate pool.

        Args:
            X_pool: ``(n, d)`` raw candidate features.
            oracle: Evaluation oracle aligned with the pool.
            X_source: Deprecated — use ``sources``.  Historical features
                (ignored by non-transfer methods).
            Y_source: Deprecated — use ``sources``.  Historical
                objectives.
            init_indices: Optional fixed initial evaluations.
            sources: Historical tasks as ``(X_k, Y_k)`` pairs; mutually
                exclusive with ``X_source``/``Y_source``.

        Returns:
            A :class:`TuningResult`.

        Raises:
            ValueError: If both source spellings are given, or
                ``init_indices`` contains duplicates / out-of-range
                entries.
        """
        sources = self._resolve_sources(X_source, Y_source, sources)
        return self._tune(X_pool, oracle, sources, init_indices)

    @abstractmethod
    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Method-specific loop; ``sources`` is already normalized."""

    @staticmethod
    def _resolve_sources(
        X_source: np.ndarray | None,
        Y_source: np.ndarray | None,
        sources: list[tuple[np.ndarray, np.ndarray]] | None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Normalize the two source spellings to a list of pairs."""
        legacy = X_source is not None or Y_source is not None
        if legacy and sources is not None:
            raise ValueError(
                "pass either X_source/Y_source or sources, not both"
            )
        if legacy:
            warnings.warn(
                "X_source/Y_source are deprecated; "
                "pass sources=[(X, y), ...] instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if X_source is None or Y_source is None:
                raise ValueError(
                    "X_source and Y_source must be given together"
                )
            sources = [(X_source, Y_source)]
        return list(sources) if sources else []

    @staticmethod
    def _stack_sources(
        sources: list[tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Stack all archives into one ``(X, Y)`` pair (single-archive
        consumers); ``(None, None)`` when there is no source data."""
        pairs = [
            (np.atleast_2d(np.asarray(X, float)),
             np.atleast_2d(np.asarray(Y, float)))
            for X, Y in sources
        ]
        pairs = [(X, Y) for X, Y in pairs if len(X)]
        if not pairs:
            return None, None
        return (
            np.vstack([X for X, _ in pairs]),
            np.vstack([Y for _, Y in pairs]),
        )

    @staticmethod
    def _normalize(X: np.ndarray) -> np.ndarray:
        """Min-max normalize features to the unit cube (degenerate
        columns map to 0.5)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        lo, hi = X.min(axis=0), X.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        out = (X - lo) / span
        return np.where(hi > lo, out, 0.5)

    @staticmethod
    def _result_from_evaluated(
        oracle: Oracle,
        evaluated: np.ndarray,
        y_evaluated: np.ndarray,
        n_iterations: int,
        stop_reason: str,
    ) -> TuningResult:
        """Standard baseline epilogue: non-dominated evaluated points."""
        evaluated = np.asarray(evaluated, dtype=int)
        nd_rows = pareto_indices(y_evaluated)
        return TuningResult(
            pareto_indices=evaluated[nd_rows],
            pareto_points=y_evaluated[nd_rows],
            n_evaluations=oracle.n_evaluations,
            n_iterations=n_iterations,
            evaluated_indices=evaluated,
            stop_reason=stop_reason,
        )

    @staticmethod
    def _validate_init_indices(
        n_pool: int, init_indices: np.ndarray
    ) -> np.ndarray:
        """Check explicit initial indices for range and uniqueness.

        Raises:
            ValueError: Naming the offending indices — a silently
                clamped or double-evaluated seed corrupts budgets and
                result bookkeeping far from the call site.
        """
        init = np.asarray(init_indices, dtype=int)
        bad = init[(init < 0) | (init >= n_pool)]
        if len(bad):
            raise ValueError(
                f"init_indices out of range [0, {n_pool}): "
                f"{sorted(set(int(i) for i in bad))}"
            )
        values, counts = np.unique(init, return_counts=True)
        dups = values[counts > 1]
        if len(dups):
            raise ValueError(
                f"duplicate init_indices: {[int(i) for i in dups]}"
            )
        return init

    @staticmethod
    def _initial_indices(
        n_pool: int,
        init_indices: np.ndarray | None,
        n_init: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Resolve the initial design (explicit, validated, or random)."""
        if init_indices is not None:
            return PoolTuner._validate_init_indices(n_pool, init_indices)
        n_init = min(max(n_init, 2), n_pool)
        return rng.choice(n_pool, size=n_init, replace=False)
