"""Gaussian-copula transfer baseline (few-shot knowledge reuse).

The copula autotuning line ("Transfer-Learning-Based Autotuning Using
Gaussian Copula"; "A Copula approach for hyperparameter transfer
learning"): rank-transform the source records, fit a Gaussian copula
over (parameters, objectives), predict each target candidate's
objectives through the latent conditional median, and rank candidates
by a deterministic sweep of scalarization weights over the
rank-normalized predictions — so each batch spans the predicted
trade-off front.  Unlike the GP methods there is no per-iteration
surrogate optimization — a fit is one correlation matrix — so the
method is usable from a handful of records and its per-round cost is a
single matrix solve.  Target evaluations are folded back into the fit
each round (few-shot refinement), which adapts the predictions when
the source's ranking transfers imperfectly.
"""

from __future__ import annotations

import numpy as np

from ..copula.model import GaussianCopula
from ..core.result import TuningResult
from .base import Oracle, PoolTuner


class CopulaTransferTuner(PoolTuner):
    """Few-shot copula-guided search over the candidate pool."""

    name = "CopulaTransfer"

    def __init__(
        self,
        budget: int = 70,
        n_init: int = 8,
        batch_size: int = 4,
        seed: int = 0,
    ) -> None:
        """Create the tuner.

        Args:
            budget: Total tool runs (including initialization).
            n_init: Initial evaluations when ``init_indices`` is not
                given (copula-seeded when sources exist, else random).
            batch_size: Candidates evaluated between copula refits.
            seed: RNG seed (tie-breaking and the no-source fallback).
        """
        if budget < 2:
            raise ValueError("budget must be >= 2")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.budget = budget
        self.n_init = n_init
        self.batch_size = batch_size
        self.seed = seed

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Seed from the source copula, then rank-evaluate-refit."""
        X_pool = np.atleast_2d(np.asarray(X_pool, dtype=float))
        rng = np.random.default_rng(self.seed)
        n, d = X_pool.shape
        budget = min(self.budget, n)
        Xs, Ys = self._stack_sources(sources)

        # ---- Initialization: copula-ranked seeds when possible. ----
        if init_indices is not None:
            init = self._validate_init_indices(n, init_indices)
        else:
            n_init = min(max(self.n_init, 2), budget - 1, n)
            init = None
            if Xs is not None:
                from ..copula.warm_start import copula_seed_indices

                init = copula_seed_indices(
                    X_pool, [(Xs, Ys)], n_init, seed=self.seed
                )
            if init is None:
                init = rng.choice(n, size=n_init, replace=False)
        evaluated = [int(i) for i in init]
        Y = np.vstack([oracle.evaluate(i) for i in evaluated])

        x_cols = np.arange(d)
        y_cols = np.arange(d, d + Y.shape[1])
        iteration = 0
        while oracle.n_evaluations < budget:
            mask = np.ones(n, dtype=bool)
            mask[evaluated] = False
            cand = np.nonzero(mask)[0]
            if len(cand) == 0:
                break
            scores = self._scores(
                X_pool, Xs, Ys, evaluated, Y, cand, x_cols, y_cols, rng
            )
            take = min(
                self.batch_size, budget - oracle.n_evaluations, len(cand)
            )
            picks = list(cand[_round_robin_picks(scores, take)])
            # One exploration slot per batch: the copula's ranking is
            # only as good as its (source-dominated) fit, so a uniform
            # draw keeps feeding it off-ranking target evidence.
            if take > 1:
                explore = [c for c in cand if c not in picks]
                if explore:
                    picks[-1] = int(rng.choice(explore))
            for pick in picks:
                Y = np.vstack([Y, oracle.evaluate(int(pick))])
                evaluated.append(int(pick))
            iteration += 1

        return self._result_from_evaluated(
            oracle, np.array(evaluated), Y, iteration, "budget"
        )

    def _scores(
        self,
        X_pool: np.ndarray,
        Xs: np.ndarray | None,
        Ys: np.ndarray | None,
        evaluated: list[int],
        Y: np.ndarray,
        cand: np.ndarray,
        x_cols: np.ndarray,
        y_cols: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-anchor scores of each candidate under the current copula
        (source records + target observations).

        The copula's conditional-median objective predictions are
        rank-normalized across the candidates, then scalarized by a
        deterministic sweep of weight vectors over the objectives (each
        objective alone, the uniform blend, and their midpoints) — so
        one batch of picks spans the predicted trade-off front instead
        of piling onto its knee.  Returns an ``(a, len(cand))`` matrix,
        one row per weight anchor, higher scores better; a single row
        of random scores when there is not enough data for a fit.
        """
        X_fit = X_pool[evaluated]
        Y_fit = Y
        if Xs is not None:
            X_fit = np.vstack([Xs, X_fit])
            Y_fit = np.vstack([Ys, Y_fit])
        if len(X_fit) < 3:
            return rng.uniform(size=(1, len(cand)))
        cop = GaussianCopula().fit(np.hstack([X_fit, Y_fit]))
        pred = cop.predict(X_pool[cand], x_cols, y_cols)
        # Rank-normalize each predicted objective to [0, 1]: weights
        # then trade off positions along the front, not raw magnitudes.
        denom = max(len(cand) - 1, 1)
        ranks = np.argsort(np.argsort(pred, axis=0), axis=0) / denom
        return -(_weight_anchors(pred.shape[1]) @ ranks.T)


def _weight_anchors(m: int) -> np.ndarray:
    """Deterministic scalarization weights sweeping the ``m``-objective
    trade-off: each one-hot extreme, the uniform blend, and the
    midpoints between them (``2m + 1`` anchors, rows sum to one)."""
    eye = np.eye(m)
    uniform = np.full((1, m), 1.0 / m)
    mids = 0.5 * (eye + uniform)
    return np.vstack([eye, uniform, mids]) if m > 1 else uniform


def _round_robin_picks(scores: np.ndarray, take: int) -> np.ndarray:
    """Pick ``take`` distinct columns cycling over the anchor rows.

    Each anchor contributes its best not-yet-chosen candidate in turn,
    so one batch spreads across the estimated front instead of piling
    onto whichever anchor scores highest overall.
    """
    a, n_cand = scores.shape
    orders = np.argsort(-scores, axis=1, kind="stable")
    cursors = np.zeros(a, dtype=int)
    chosen: list[int] = []
    taken = np.zeros(n_cand, dtype=bool)
    while len(chosen) < min(take, n_cand):
        row = len(chosen) % a
        c = cursors[row]
        while taken[orders[row, c]]:
            c += 1
        cursors[row] = c + 1
        pick = int(orders[row, c])
        taken[pick] = True
        chosen.append(pick)
    return np.asarray(chosen, dtype=int)

