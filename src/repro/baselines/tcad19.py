"""TCAD'19 baseline: Pareto-driven active learning.

Ma, Roy, Miao, Chen, Yu, "Cross-layer optimization for high speed adders:
a Pareto driven machine learning approach" (IEEE TCAD 2019).  An active-
learning loop: fit per-objective surrogates on the labelled set, predict
the pool, and iteratively query the points the models consider closest to
the predicted Pareto front, preferring high model disagreement
(uncertainty) among them.  Runs until its own convergence test (the
predicted front stops changing) or the budget is hit — which is why its
run counts float above the fixed-budget methods in the paper's tables.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TuningResult
from ..gp.gp_regression import GPRegressor
from ..gp.kernels import make_kernel
from ..pareto.dominance import non_dominated_mask
from .base import Oracle, PoolTuner


class Tcad19ActiveLearner(PoolTuner):
    """Pareto-driven active learning with GP surrogates."""

    name = "TCAD'19"

    def __init__(
        self,
        budget: int = 92,
        n_init: int = 10,
        batch_size: int = 1,
        patience: int = 8,
        kernel: str = "rbf",
        refit_every: int = 5,
        seed: int = 0,
    ) -> None:
        """Create the tuner.

        Args:
            budget: Maximum tool runs.
            n_init: Random initial evaluations.
            batch_size: Queries per active-learning round.
            patience: Stop after this many rounds without a change in the
                predicted Pareto membership.
            kernel: GP kernel family.
            refit_every: Hyperparameter refit period.
            seed: RNG seed.
        """
        if budget < 2:
            raise ValueError("budget must be >= 2")
        self.budget = budget
        self.n_init = n_init
        self.batch_size = batch_size
        self.patience = patience
        self.kernel = kernel
        self.refit_every = refit_every
        self.seed = seed

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Run active learning until convergence or budget (sources are
        ignored — single-task method)."""
        rng = np.random.default_rng(self.seed)
        Xn = self._normalize(X_pool)
        n = len(Xn)
        m = oracle.n_objectives

        init = self._initial_indices(n, init_indices, self.n_init, rng)
        evaluated = list(int(i) for i in init)
        Y = np.vstack([oracle.evaluate(i) for i in evaluated])

        models = [
            GPRegressor(
                kernel=make_kernel(self.kernel, Xn.shape[1], 0.3),
                seed=self.seed + j,
            )
            for j in range(m)
        ]

        prev_front: frozenset[int] = frozenset()
        stable_rounds = 0
        iteration = 0
        stop_reason = "budget"
        while oracle.n_evaluations < min(self.budget, n):
            mu = np.empty((n, m))
            sigma = np.empty((n, m))
            for j, model in enumerate(models):
                model.optimize = (iteration % self.refit_every) == 0
                model.fit(Xn[evaluated], Y[:, j])
                mean, var = model.predict(Xn)
                mu[:, j] = mean
                sigma[:, j] = np.sqrt(var)

            # Predicted Pareto membership over the pool.
            pred_front = non_dominated_mask(mu)
            front_now = frozenset(np.nonzero(pred_front)[0].tolist())
            if front_now == prev_front:
                stable_rounds += 1
                if stable_rounds >= self.patience:
                    stop_reason = "converged"
                    break
            else:
                stable_rounds = 0
            prev_front = front_now

            # Query the most uncertain unevaluated predicted-front points
            # (fall back to global uncertainty if the front is exhausted).
            mask = np.ones(n, dtype=bool)
            mask[evaluated] = False
            unc = sigma.sum(axis=1)
            cand = np.nonzero(pred_front & mask)[0]
            if len(cand) == 0:
                cand = np.nonzero(mask)[0]
            if len(cand) == 0:
                stop_reason = "pool_exhausted"
                break
            order = np.argsort(-unc[cand])[: self.batch_size]
            for pick in cand[order]:
                Y = np.vstack([Y, oracle.evaluate(int(pick))])
                evaluated.append(int(pick))
                if oracle.n_evaluations >= min(self.budget, n):
                    break
            iteration += 1

        return self._result_from_evaluated(
            oracle, np.array(evaluated), Y, iteration, stop_reason
        )
