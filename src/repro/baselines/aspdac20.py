"""ASPDAC'20 baseline: FIST — feature-importance sampling + tree boosting.

Xie et al., "FIST: a feature-importance sampling and tree-based method for
automatic design flow parameter tuning" (ASP-DAC 2020).  Two phases:

1. *Feature-importance sampling*: learn parameter importances (from prior
   data when available — FIST's own form of knowledge reuse), cluster the
   pool by the important parameters, and sample to cover those clusters.
2. *Model-guided search*: fit gradient-boosted trees per objective on the
   labelled set and greedily evaluate the best predicted candidates, with
   ε-greedy exploration.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TuningResult
from ..ml.boosting import GradientBoostingRegressor
from .base import Oracle, PoolTuner


class Aspdac20Fist(PoolTuner):
    """FIST tuner (our reimplementation; no xgboost offline)."""

    name = "ASPDAC'20"

    def __init__(
        self,
        budget: int = 70,
        n_init: int = 12,
        explore_fraction: float = 0.4,
        epsilon: float = 0.15,
        n_estimators: int = 60,
        max_depth: int = 3,
        top_features: int = 4,
        seed: int = 0,
    ) -> None:
        """Create the tuner.

        Args:
            budget: Total tool runs.
            n_init: Importance-sampling phase size.
            explore_fraction: Share of the budget spent in phase 1.
            epsilon: ε-greedy exploration rate in phase 2.
            n_estimators: Boosting rounds per objective model.
            max_depth: Weak-learner depth.
            top_features: Number of important features used for
                clustering coverage.
            seed: RNG seed.
        """
        if budget < 2:
            raise ValueError("budget must be >= 2")
        if not 0.0 <= explore_fraction < 1.0:
            raise ValueError("explore_fraction must be in [0, 1)")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.budget = budget
        self.n_init = n_init
        self.explore_fraction = explore_fraction
        self.epsilon = epsilon
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.top_features = top_features
        self.seed = seed

    def _importances(
        self,
        Xn: np.ndarray,
        X_source: np.ndarray | None,
        Y_source: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Feature importances, from prior-design data when available."""
        d = Xn.shape[1]
        if X_source is None or Y_source is None or not len(
            np.atleast_2d(X_source)
        ):
            return np.full(d, 1.0 / d)
        Xs = self._normalize(X_source)
        Ys = np.atleast_2d(np.asarray(Y_source, dtype=float))
        imp = np.zeros(d)
        for j in range(Ys.shape[1]):
            model = GradientBoostingRegressor(
                n_estimators=30, max_depth=self.max_depth,
                seed=int(rng.integers(1 << 30)),
            ).fit(Xs, Ys[:, j])
            imp += model.feature_importances_
        total = imp.sum()
        return imp / total if total > 0 else np.full(d, 1.0 / d)

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Run FIST's two phases."""
        rng = np.random.default_rng(self.seed)
        Xn = self._normalize(X_pool)
        n = len(Xn)
        m = oracle.n_objectives
        budget = min(self.budget, n)

        X_source, Y_source = self._stack_sources(sources)
        importances = self._importances(Xn, X_source, Y_source, rng)
        top = np.argsort(-importances)[: self.top_features]

        # ---- Phase 1: importance-guided coverage sampling. ----
        n_explore = max(
            self.n_init, int(round(budget * self.explore_fraction))
        )
        n_explore = min(n_explore, budget - 1, n)
        if init_indices is not None:
            evaluated = [
                int(i)
                for i in self._validate_init_indices(n, init_indices)
            ]
        else:
            evaluated = []
        # Greedy farthest-point coverage in the important-feature
        # subspace.
        weights = importances[top]
        sub = Xn[:, top] * weights
        if not evaluated:
            evaluated.append(int(rng.integers(n)))
        while len(evaluated) < n_explore:
            dists = np.min(
                np.linalg.norm(
                    sub[:, None, :] - sub[evaluated][None, :, :], axis=2
                ),
                axis=1,
            )
            dists[evaluated] = -1.0
            evaluated.append(int(np.argmax(dists)))
        Y = np.vstack([oracle.evaluate(i) for i in evaluated])

        # ---- Phase 2: boosted-tree guided exploitation. ----
        iteration = 0
        while oracle.n_evaluations < budget:
            models = [
                GradientBoostingRegressor(
                    n_estimators=self.n_estimators,
                    max_depth=self.max_depth,
                    seed=self.seed + 31 * iteration + j,
                ).fit(Xn[evaluated], Y[:, j])
                for j in range(m)
            ]
            pred = np.column_stack([mo.predict(Xn) for mo in models])
            mask = np.ones(n, dtype=bool)
            mask[evaluated] = False
            cand = np.nonzero(mask)[0]
            if len(cand) == 0:
                break
            if rng.uniform() < self.epsilon:
                pick = int(rng.choice(cand))
            else:
                # FIST optimizes a single (equal-weight) quality score of
                # the normalized metric predictions.
                lo = pred.min(axis=0)
                span = np.where(
                    np.ptp(pred, axis=0) > 0, np.ptp(pred, axis=0), 1.0
                )
                score = ((pred[cand] - lo) / span).sum(axis=1)
                pick = int(cand[np.argmin(score)])
            Y = np.vstack([Y, oracle.evaluate(pick)])
            evaluated.append(pick)
            iteration += 1

        return self._result_from_evaluated(
            oracle, np.array(evaluated), Y, iteration, "budget"
        )
