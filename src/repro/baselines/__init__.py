"""Reimplemented prior-art tuners (the paper's comparison baselines)."""

from .aspdac20 import Aspdac20Fist
from .base import PoolTuner
from .copula_transfer import CopulaTransferTuner
from .dac19 import Dac19Recommender
from .mlcad19 import Mlcad19LcbBayesOpt
from .random_search import RandomSearchTuner
from .tcad19 import Tcad19ActiveLearner

__all__ = [
    "Aspdac20Fist",
    "CopulaTransferTuner",
    "Dac19Recommender",
    "Mlcad19LcbBayesOpt",
    "PoolTuner",
    "RandomSearchTuner",
    "Tcad19ActiveLearner",
]
