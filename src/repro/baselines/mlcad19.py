"""MLCAD'19 baseline: classical Bayesian optimization with LCB.

Ma, Yu, Yu, "CAD tool design space exploration via Bayesian optimization"
(MLCAD 2019).  Classical single-task BO: a GP surrogate with a lower-
confidence-bound acquisition.  Multi-objective handling follows the
standard random-scalarization recipe (ParEGO-style augmented Chebyshev
weights redrawn each iteration), which is how a single-acquisition BO flow
covers a Pareto front.
"""

from __future__ import annotations

import numpy as np

from ..core.result import TuningResult
from ..gp.gp_regression import GPRegressor
from ..gp.kernels import make_kernel
from .base import Oracle, PoolTuner

#: Augmented-Chebyshev blend coefficient.
_RHO = 0.05


class Mlcad19LcbBayesOpt(PoolTuner):
    """BO + LCB with random scalarization over the candidate pool."""

    name = "MLCAD'19"

    def __init__(
        self,
        budget: int = 70,
        n_init: int = 10,
        kappa: float = 2.0,
        kernel: str = "rbf",
        refit_every: int = 5,
        seed: int = 0,
    ) -> None:
        """Create the tuner.

        Args:
            budget: Total tool runs (including initialization).
            n_init: Random initial evaluations.
            kappa: LCB exploration weight (``mu - kappa * sigma``).
            kernel: GP kernel family.
            refit_every: Hyperparameter refit period.
            seed: RNG seed.
        """
        if budget < 2:
            raise ValueError("budget must be >= 2")
        if kappa < 0:
            raise ValueError("kappa must be non-negative")
        self.budget = budget
        self.n_init = n_init
        self.kappa = kappa
        self.kernel = kernel
        self.refit_every = refit_every
        self.seed = seed

    def _tune(
        self,
        X_pool: np.ndarray,
        oracle: Oracle,
        sources: list[tuple[np.ndarray, np.ndarray]],
        init_indices: np.ndarray | None,
    ) -> TuningResult:
        """Run BO until the budget is exhausted.

        Source data is ignored (single-task method).
        """
        rng = np.random.default_rng(self.seed)
        Xn = self._normalize(X_pool)
        n = len(Xn)
        m = oracle.n_objectives

        init = self._initial_indices(n, init_indices, self.n_init, rng)
        evaluated = list(int(i) for i in init)
        Y = np.vstack([oracle.evaluate(i) for i in evaluated])

        gp = GPRegressor(
            kernel=make_kernel(self.kernel, Xn.shape[1], 0.3),
            seed=self.seed,
        )
        iteration = 0
        while oracle.n_evaluations < min(self.budget, n):
            # Random augmented-Chebyshev scalarization of the normalized
            # objectives.
            lo = Y.min(axis=0)
            span = np.where(np.ptp(Y, axis=0) > 0, np.ptp(Y, axis=0), 1.0)
            Yn = (Y - lo) / span
            w = rng.dirichlet(np.ones(m))
            scalar = np.max(Yn * w, axis=1) + _RHO * (Yn @ w)

            gp.optimize = (iteration % self.refit_every) == 0
            gp.fit(Xn[evaluated], scalar)
            mask = np.ones(n, dtype=bool)
            mask[evaluated] = False
            candidates = np.nonzero(mask)[0]
            if len(candidates) == 0:
                break
            mu, var = gp.predict(Xn[candidates])
            lcb = mu - self.kappa * np.sqrt(var)
            pick = int(candidates[np.argmin(lcb)])
            Y = np.vstack([Y, oracle.evaluate(pick)])
            evaluated.append(pick)
            iteration += 1

        return self._result_from_evaluated(
            oracle, np.array(evaluated), Y, iteration, "budget"
        )
